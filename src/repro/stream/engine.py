"""The streaming aggregation engine: incremental consensus maintenance.

:class:`StreamingAggregator` keeps a consensus clustering up to date while
input clusterings arrive one at a time.  Each :meth:`~StreamingAggregator.observe`
call does two things:

1. **Count update** — folds the arriving clustering into an
   :class:`~repro.stream.instance.IncrementalCorrelationInstance`
   (one O(n²) vectorized pass over the running separation counts; no
   rebuild from the label history).
2. **Refinement** — re-optimizes the consensus.  Up to
   ``sampling_threshold`` objects this is LOCALSEARCH *warm-started from
   the previous consensus*: one clustering rarely moves the optimum far,
   so the search typically converges in one or two cheap sweeps instead
   of the cold-start descent from singletons.  Beyond the threshold the
   engine falls back to the paper's §4.1 SAMPLING scheme on the current
   instance (warm starts do not transfer across a fresh sample, but the
   assignment phase keeps the pass linear in ``n``).

Under the coin-flip missing model the warm path keeps one
:class:`~repro.core.objective.MoveEvaluator` alive across updates: the
arriving clustering changes ``X`` affinely (``X ← scale·X + sep/weight``),
so the evaluator's move masses follow in O(n·k) from per-cluster label
counts instead of an O(n²·k) rebuild, and the ``X`` values themselves are
refreshed into one shared buffer the evaluator aliases.  Every
``resync_every`` updates the evaluator is rebuilt from scratch to squash
accumulated float drift (drift never changes move decisions in practice —
score gaps are multiples of ``1/weight`` — but the resync bounds it
regardless).  The "average" missing model re-normalizes per pair, which is
not affine, so it rebuilds the evaluator each update.

Every update appends a :class:`StreamUpdate` record — cost, cluster
count, local-search moves/sweeps, wall-times — to the engine history, and
:meth:`StreamingAggregator.stats` aggregates them for observability
(cost trajectory, moves per refinement pass, time per update).  A
long-running engine survives restarts through
:mod:`repro.stream.checkpoint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..analysis.contracts import check_stream_drift, contracts_enabled
from ..algorithms.local_search import local_search, refine
from ..algorithms.sampling import sampling
from ..core.instance import CorrelationInstance
from ..core.objective import MoveEvaluator
from ..core.partition import Clustering
from ..obs.metrics import inc
from ..obs.trace import span
from ..registry import SolveContext, register_method
from .instance import IncrementalCorrelationInstance

__all__ = ["StreamingAggregator", "StreamUpdate", "StreamStats"]


@dataclass
class StreamUpdate:
    """Observability record of one :meth:`StreamingAggregator.observe` call."""

    index: int  #: 1-based update number
    cost: float  #: correlation cost d(C) of the consensus after this update
    disagreements: float  #: effective-weight objective effective_m * d(C) (= count * d(C) at decay=1)
    k: int  #: clusters in the consensus
    moves: int  #: improving relocations made by the refinement pass
    sweeps: int  #: local-search sweeps (0 on the sampling path)
    used_sampling: bool  #: True when the n > threshold fallback ran
    observe_seconds: float  #: wall-time of the count update
    refine_seconds: float  #: wall-time of the refinement pass


@dataclass
class StreamStats:
    """Aggregated engine statistics (see :meth:`StreamingAggregator.stats`)."""

    updates: int = 0
    total_moves: int = 0
    total_sweeps: int = 0
    sampling_updates: int = 0
    costs: list[float] = field(default_factory=list)
    update_seconds: list[float] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable report."""
        if not self.updates:
            return "no updates observed"
        mean_ms = 1000.0 * float(np.mean(self.update_seconds))
        return (
            f"updates={self.updates}  cost={self.costs[-1]:.1f}  "
            f"moves={self.total_moves}  mean_update={mean_ms:.1f}ms"
        )


class StreamingAggregator:
    """Maintain a consensus clustering online as clusterings arrive.

    Parameters
    ----------
    n:
        Number of objects in the stream (fixed).
    p, missing, decay, dtype:
        Forwarded to :class:`IncrementalCorrelationInstance` — the
        missing-value model and the exponential decay factor for
        drifting streams (``decay=1`` reproduces the batch instance
        exactly).
    sampling_threshold:
        Above this many objects the per-update refinement switches from
        full LOCALSEARCH to the §4.1 SAMPLING scheme.
    sample_size:
        SAMPLING sample size (default: the paper-guided
        :func:`~repro.algorithms.sampling.default_sample_size`).
    max_sweeps:
        Safety cap on local-search sweeps per update.
    resync_every:
        Rebuild the persistent move evaluator from scratch every this many
        warm updates (coin-flip path only), bounding float drift in the
        incrementally-maintained masses.
    rng:
        Seed or generator for the stochastic pieces (sweep order
        shuffling, sampling); a single generator is threaded through the
        engine's lifetime so replays are reproducible.
    incremental:
        Adopt an existing :class:`IncrementalCorrelationInstance` (with
        its accumulated counts) instead of allocating a fresh one — the
        checkpoint-restore path uses this to avoid a dead O(n²)
        allocation.  Must cover exactly ``n`` objects; ``p``, ``missing``,
        ``decay`` and ``dtype`` are taken from the adopted instance and
        must not be passed alongside it.

    Examples
    --------
    >>> import numpy as np
    >>> engine = StreamingAggregator(6)
    >>> for labels in ([0, 0, 1, 1, 2, 2], [0, 1, 0, 1, 2, 3], [0, 1, 0, 1, 2, 2]):
    ...     update = engine.observe(np.asarray(labels))
    >>> engine.consensus.k
    3
    >>> round(engine.disagreements(), 6)
    5.0
    """

    def __init__(
        self,
        n: int,
        p: float = 0.5,
        missing: str = "coin-flip",
        decay: float = 1.0,
        dtype: np.dtype | type | None = None,
        sampling_threshold: int = 5000,
        sample_size: int | None = None,
        max_sweeps: int = 200,
        resync_every: int = 256,
        rng: np.random.Generator | int | None = None,
        incremental: IncrementalCorrelationInstance | None = None,
    ) -> None:
        if sampling_threshold < 1:
            raise ValueError("sampling_threshold must be positive")
        if resync_every < 1:
            raise ValueError("resync_every must be positive")
        if incremental is not None:
            if incremental.n != n:
                raise ValueError(
                    f"adopted instance covers {incremental.n} objects, engine expects {n}"
                )
            if (p, missing, decay, dtype) != (0.5, "coin-flip", 1.0, None):
                raise ValueError(
                    "p/missing/decay/dtype come from the adopted instance; "
                    "do not pass them alongside incremental="
                )
            self._incremental = incremental
        else:
            self._incremental = IncrementalCorrelationInstance(
                n, p=p, missing=missing, decay=decay, dtype=dtype
            )
        self._sampling_threshold = int(sampling_threshold)
        self._sample_size = sample_size
        self._max_sweeps = int(max_sweeps)
        self._resync_every = int(resync_every)
        self._rng = np.random.default_rng(rng)
        self._consensus: Clustering | None = None
        self._history: list[StreamUpdate] = []
        # Warm-path working state, rebuilt on demand (derived, not
        # checkpointed): the shared X buffer the evaluator aliases, the
        # persistent evaluator itself, and the warm updates since its last
        # from-scratch rebuild.
        self._X_buffer: np.ndarray | None = None
        self._evaluator: MoveEvaluator | None = None
        self._updates_since_sync = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of objects."""
        return self._incremental.n

    @property
    def count(self) -> int:
        """Clusterings observed so far."""
        return self._incremental.count

    @property
    def consensus(self) -> Clustering:
        """The current consensus clustering."""
        if self._consensus is None:
            raise RuntimeError("no clusterings observed yet")
        return self._consensus

    @property
    def incremental(self) -> IncrementalCorrelationInstance:
        """The underlying incremental instance (read-mostly)."""
        return self._incremental

    @property
    def history(self) -> list[StreamUpdate]:
        """Per-update observability records, oldest first."""
        return list(self._history)

    def cost(self) -> float:
        """Correlation cost ``d(C)`` of the current consensus.

        Read from the last update record when one exists (the record is
        computed for the same consensus); a freshly restored engine with
        an empty history recomputes from the instance.
        """
        if self._history:
            return self._history[-1].cost
        return self._incremental.instance().cost(self.consensus)

    def disagreements(self) -> float:
        """Effective-weight aggregation objective of the consensus.

        Returns ``effective_m · d(C)`` where ``effective_m`` is the
        decayed total weight ``Σ decay^age``.  With ``decay == 1`` this is
        exactly the paper's ``D(C) = count · d(C)``; with decay it is the
        recency-weighted analogue — the identity against the raw
        observation count no longer holds on a decayed instance, so the
        raw-count product is deliberately **not** reported.  Multiply
        :meth:`cost` by :attr:`count <IncrementalCorrelationInstance.count>`
        yourself if you want the (biased) unweighted figure.
        """
        return self._incremental.effective_m * self.cost()

    def stats(self) -> StreamStats:
        """Aggregate the update history into a :class:`StreamStats`."""
        stats = StreamStats()
        for update in self._history:
            stats.updates += 1
            stats.total_moves += update.moves
            stats.total_sweeps += update.sweeps
            stats.sampling_updates += int(update.used_sampling)
            stats.costs.append(update.cost)
            stats.update_seconds.append(update.observe_seconds + update.refine_seconds)
        return stats

    # ------------------------------------------------------------------
    # The streaming step
    # ------------------------------------------------------------------

    def _refresh_instance(self) -> CorrelationInstance:
        """Rewrite the shared X buffer in place and wrap it as an instance.

        The buffer is float64 so that :class:`MoveEvaluator` aliases it
        without a copy — in-place refreshes then keep the persistent
        evaluator's distance view current for free.
        """
        if self._X_buffer is None:
            self._X_buffer = np.empty((self.n, self.n), dtype=np.float64)
        self._incremental.distances(out=self._X_buffer)
        return CorrelationInstance(self._X_buffer, m=self._incremental.count, validate=False)

    def observe(self, labels: np.ndarray) -> StreamUpdate:
        """Fold one arriving clustering in and re-optimize the consensus.

        Returns the :class:`StreamUpdate` record for this update (also
        appended to :attr:`history`).
        """
        column = np.asarray(labels)
        with span("stream.observe", index=self._incremental.count + 1) as observe_span:
            weight_before = self._incremental.effective_m
            self._incremental.observe(column)
        observe_seconds = observe_span.seconds

        moves = sweeps = 0
        used_sampling = False
        with span("stream.refine") as refine_span:
            if self.n > self._sampling_threshold:
                used_sampling = True
                inc("stream.sampling_updates")
                refine_span.set(mode="sampling")
                instance = self._incremental.instance()
                self._consensus = sampling(
                    instance,
                    inner=local_search,
                    # The engine's n is fixed at construction; a configured
                    # sample size beyond it means "sample everything".
                    sample_size=(
                        None if self._sample_size is None else min(self._sample_size, self.n)
                    ),
                    rng=self._rng,
                )
            else:
                instance = self._refresh_instance()
                evaluator = self._evaluator
                if (
                    evaluator is not None
                    and self._incremental.missing == "coin-flip"
                    and self._updates_since_sync < self._resync_every
                ):
                    # Affine X update: follow it on the live evaluator in O(n·k).
                    inc("stream.warm_updates")
                    refine_span.set(mode="incremental")
                    weight_after = self._incremental.effective_m
                    scale = self._incremental.decay * weight_before / weight_after
                    evaluator.apply_stream_update(
                        column, self._incremental.p, scale, 1.0 / weight_after
                    )
                    self._updates_since_sync += 1
                else:
                    # Full evaluator rebuild: first update, non-affine
                    # missing model, or the periodic drift resync.
                    inc("stream.rebuilds")
                    refine_span.set(mode="rebuild")
                    initial = (
                        Clustering.singletons(self.n)
                        if self._consensus is None
                        else self._consensus
                    )
                    evaluator = MoveEvaluator(instance, initial)
                    self._evaluator = evaluator
                    self._updates_since_sync = 0
                details = refine(evaluator, max_sweeps=self._max_sweeps)
                self._consensus = evaluator.clustering()
                # Shrink freed slots and renumber canonically so the next
                # O(n·k) mass update really is O(n·k), not O(n·slots-ever).
                evaluator.compact()
                moves, sweeps = details.moves, details.sweeps
                refine_span.set(moves=moves, sweeps=sweeps)
        refine_seconds = refine_span.seconds

        evaluator = self._evaluator
        if used_sampling or evaluator is None:
            cost = instance.cost(self._consensus)
        else:
            cost = evaluator.total_cost_fast()
            if contracts_enabled():
                # Debug-mode drift bound: the mass-maintained cost must track
                # a from-scratch recomputation on the current instance.
                check_stream_drift(
                    cost,
                    instance.cost(self._consensus),
                    pairs=self.n * (self.n - 1) / 2.0,
                )
        update = StreamUpdate(
            index=self._incremental.count,
            cost=cost,
            disagreements=self._incremental.effective_m * cost,
            k=self._consensus.k,
            moves=moves,
            sweeps=sweeps,
            used_sampling=used_sampling,
            observe_seconds=observe_seconds,
            refine_seconds=refine_seconds,
        )
        self._history.append(update)
        return update

    def observe_many(self, matrix: np.ndarray) -> list[StreamUpdate]:
        """Replay the columns of an ``(n, m)`` label matrix in order."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != self.n:
            raise ValueError(f"expected an ({self.n}, m) label matrix, got {matrix.shape}")
        return [self.observe(matrix[:, j]) for j in range(matrix.shape[1])]

    # ------------------------------------------------------------------
    # Checkpoint support (see repro.stream.checkpoint)
    # ------------------------------------------------------------------

    def state(self) -> dict[str, Any]:
        """Full engine state for checkpointing."""
        return {
            "instance": self._incremental.state(),
            "consensus": None if self._consensus is None else self._consensus.labels,
            "rng_state": self._rng.bit_generator.state,
            "config": {
                "sampling_threshold": self._sampling_threshold,
                "sample_size": self._sample_size,
                "max_sweeps": self._max_sweeps,
                "resync_every": self._resync_every,
            },
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "StreamingAggregator":
        """Rebuild an engine from :meth:`state` output (inverse operation).

        The update history is observability data, not algorithm state, and
        is intentionally not checkpointed — a restored engine starts with
        an empty history but identical counts, consensus, and RNG stream.
        """
        incremental = IncrementalCorrelationInstance.from_state(state["instance"])
        config = state["config"]
        engine = cls(
            incremental.n,
            sampling_threshold=config["sampling_threshold"],
            sample_size=config["sample_size"],
            max_sweeps=config["max_sweeps"],
            resync_every=config.get("resync_every", 256),
            incremental=incremental,
        )
        consensus = state["consensus"]
        engine._consensus = None if consensus is None else Clustering(np.asarray(consensus))
        engine._rng.bit_generator.state = state["rng_state"]
        return engine

    def __repr__(self) -> str:
        k = "?" if self._consensus is None else self._consensus.k
        return (
            f"StreamingAggregator(n={self.n}, count={self.count}, k={k}, "
            f"threshold={self._sampling_threshold})"
        )


def _solve_streaming(ctx: SolveContext) -> Clustering:
    # Relocated verbatim from aggregate()'s old "streaming" branch: replay
    # the label-matrix columns through a fresh engine.
    matrix = ctx.require_matrix("streaming")
    engine = StreamingAggregator(matrix.shape[0], p=ctx.p, **ctx.params)
    engine.observe_many(matrix)
    return engine.consensus


# Registered via an explicit call (not decorator syntax) so the class
# object keeps its precise type for the strict-mypy consumers upstream.
register_method(
    "streaming",
    kind="matrix",
    stochastic=True,
    supports_collapse=False,
    exclude=("p",),
    solver=_solve_streaming,
)(StreamingAggregator)
