"""Incremental correlation instances for streaming aggregation.

The batch :class:`~repro.core.instance.CorrelationInstance` is built from a
complete ``(n, m)`` label matrix in one pass.  In a streaming setting the
input clusterings arrive one at a time and the ``X`` matrix must follow
along without replaying history: :class:`IncrementalCorrelationInstance`
keeps the *running separation counts* — the un-normalized sum of per-pair
separation terms — and folds each arriving clustering in with one blocked
O(n²) vectorized update, using the exact same
:func:`~repro.core.instance.pair_separation_block` kernel as the batch
build.  After ``k`` calls to :meth:`observe` (with no decay) the matrix is
bitwise-reproducible against a batch build from the same ``k`` columns.

Drifting streams are handled by *exponential decay*: with
``decay = γ < 1``, observing a clustering first scales every accumulator by
``γ``, so the effective weight of the clustering observed ``a`` updates ago
is ``γ^a`` and

    X = Σ_a γ^a · sep_a  /  Σ_a γ^a

— a recency-weighted disagreement fraction that still lies in ``[0, 1]``
and still feeds every downstream algorithm unchanged.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..analysis.contracts import check_distance_matrix, contracts_enabled
from ..core.instance import _BLOCK_ROWS, CorrelationInstance, pair_separation_block
from ..core.labels import MISSING

__all__ = ["IncrementalCorrelationInstance"]


class IncrementalCorrelationInstance:
    """A correlation instance maintained online, one clustering at a time.

    Parameters
    ----------
    n:
        Number of objects (fixed for the lifetime of the stream).
    p:
        Missing-value coin-flip probability (§2 of the paper).
    missing:
        ``"coin-flip"`` (default) or ``"average"`` — the same two §2
        strategies as :func:`~repro.core.instance.disagreement_fractions`.
    decay:
        Exponential decay factor in ``(0, 1]`` applied to all previous
        observations when a new clustering arrives; ``1.0`` (default)
        means no decay and exact agreement with the batch build.
    dtype:
        Accumulator dtype; defaults to float64 up to 4096 objects and
        float32 beyond, matching the batch construction.
    """

    def __init__(
        self,
        n: int,
        p: float = 0.5,
        missing: str = "coin-flip",
        decay: float = 1.0,
        dtype: np.dtype | type | None = None,
    ) -> None:
        self._configure(n, p, missing, decay, dtype)
        # Running sum of per-pair separation terms (decayed).
        self._separation = np.zeros((n, n), dtype=self._dtype)
        # For "average": decayed count of commonly-concrete pairs; for
        # "coin-flip" the per-pair denominator is the scalar weight below.
        self._comparable = (
            np.zeros((n, n), dtype=self._dtype) if missing == "average" else None
        )
        self._weight = 0.0  # Σ decay^age, == count when decay == 1
        self._count = 0  # raw number of observed clusterings

    def _configure(
        self,
        n: int,
        p: float,
        missing: str,
        decay: float,
        dtype: np.dtype | type | None,
    ) -> None:
        """Validate and set the scalar configuration (no array allocation).

        Shared by ``__init__`` and :meth:`from_state`, which adopts
        checkpointed accumulators instead of allocating zeroed ones.
        """
        if n < 1:
            raise ValueError("an instance needs at least one object")
        if missing not in ("coin-flip", "average"):
            raise ValueError(f"missing must be 'coin-flip' or 'average', got {missing!r}")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be a probability, got {p}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must lie in (0, 1], got {decay}")
        if dtype is None:
            dtype = np.float64 if n <= 4096 else np.float32
        self._n = int(n)
        self._p = float(p)
        self._missing = missing
        self._decay = float(decay)
        self._dtype = np.dtype(dtype)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of objects."""
        return self._n

    @property
    def count(self) -> int:
        """Raw number of clusterings observed so far."""
        return self._count

    @property
    def effective_m(self) -> float:
        """Decayed total weight ``Σ decay^age`` (equals ``count`` at decay=1)."""
        return self._weight

    @property
    def p(self) -> float:
        return self._p

    @property
    def missing(self) -> str:
        return self._missing

    @property
    def decay(self) -> float:
        return self._decay

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def observe(self, labels: np.ndarray) -> None:
        """Fold one arriving clustering into the running counts.

        ``labels`` is a length-``n`` integer vector, ``-1`` marking
        objects the clustering has no opinion about (it must have an
        opinion about at least one).  One blocked O(n²) vectorized pass;
        no history is kept.
        """
        column = np.asarray(labels)
        if column.shape != (self._n,):
            raise ValueError(
                f"labels must cover all {self._n} objects, got shape {column.shape}"
            )
        if not np.issubdtype(column.dtype, np.integer):
            raise TypeError(f"labels must be integers, got dtype {column.dtype}")
        if np.any(column < MISSING):
            raise ValueError("labels must be >= -1 (-1 denotes a missing entry)")
        if np.all(column == MISSING):
            raise ValueError("clustering is entirely missing and carries no information")
        if self._decay != 1.0:
            self._separation *= self._dtype.type(self._decay)
            if self._comparable is not None:
                self._comparable *= self._dtype.type(self._decay)
        for start in range(0, self._n, _BLOCK_ROWS):
            stop = min(start + _BLOCK_ROWS, self._n)
            separation, both_present = pair_separation_block(
                column, start, stop, p=self._p, dtype=self._dtype, missing=self._missing
            )
            self._separation[start:stop] += separation
            if both_present is not None and self._comparable is not None:
                self._comparable[start:stop] += both_present
        self._weight = self._decay * self._weight + 1.0
        self._count += 1

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def distances(self, out: np.ndarray | None = None) -> np.ndarray:
        """The current ``X`` matrix.

        Without ``out``, returns a fresh array (safe to hold).  With
        ``out`` — an ``(n, n)`` float array — the matrix is written in
        place and ``out`` is returned; the streaming engine uses this to
        refresh one shared buffer per update instead of reallocating n².
        """
        if self._count == 0:
            raise RuntimeError("no clusterings observed yet")
        if out is None:
            out = np.empty((self._n, self._n), dtype=self._dtype)
        elif out.shape != (self._n, self._n):
            raise ValueError(f"out must have shape ({self._n}, {self._n}), got {out.shape}")
        if self._comparable is None:
            np.divide(self._separation, self._dtype.type(self._weight), out=out)
        else:
            with np.errstate(invalid="ignore", divide="ignore"):
                np.divide(self._separation, self._comparable, out=out)
            out[self._comparable == 0] = self._dtype.type(0.5)
        np.fill_diagonal(out, 0.0)
        if contracts_enabled():
            check_distance_matrix(out, context="IncrementalCorrelationInstance.distances")
        return out

    def instance(self) -> CorrelationInstance:
        """The current state as a batch :class:`CorrelationInstance`.

        ``m`` is the raw observation count; with decay the identity
        ``D(C) = m · d(C)`` becomes a recency-weighted analogue.
        """
        return CorrelationInstance(self.distances(), m=self._count, validate=False)

    # ------------------------------------------------------------------
    # Checkpoint support (see repro.stream.checkpoint)
    # ------------------------------------------------------------------

    def state(self) -> dict[str, Any]:
        """Internal accumulators + config, for checkpointing."""
        return {
            "separation": self._separation,
            "comparable": self._comparable,
            "weight": self._weight,
            "count": self._count,
            "config": {
                "n": self._n,
                "p": self._p,
                "missing": self._missing,
                "decay": self._decay,
                "dtype": self._dtype.name,
            },
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "IncrementalCorrelationInstance":
        """Rebuild an instance from :meth:`state` output (inverse operation).

        The checkpointed accumulators are adopted directly (one copy each,
        to decouple from the caller's arrays) — no zeroed O(n²) matrices
        are allocated and thrown away on the restore path.
        """
        config = state["config"]
        inst = cls.__new__(cls)
        inst._configure(
            config["n"],
            config["p"],
            config["missing"],
            config["decay"],
            np.dtype(config["dtype"]),
        )
        separation = np.asarray(state["separation"], dtype=inst._dtype)
        if separation.shape != (inst._n, inst._n):
            raise ValueError("checkpointed separation counts do not match n")
        inst._separation = separation.copy()
        inst._comparable = None
        if config["missing"] == "average":
            comparable = state["comparable"]
            if comparable is None:
                raise ValueError("'average' state needs comparable counts")
            inst._comparable = np.asarray(comparable, dtype=inst._dtype).copy()
        inst._weight = float(state["weight"])
        inst._count = int(state["count"])
        return inst

    def __repr__(self) -> str:
        return (
            f"IncrementalCorrelationInstance(n={self._n}, count={self._count}, "
            f"missing={self._missing!r}, decay={self._decay})"
        )
