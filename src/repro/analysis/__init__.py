"""Static analysis and runtime contracts for the reproduction.

Two enforcement layers live here:

* :mod:`repro.analysis.lint` — **repolint**, an AST-based linter with
  repository-specific rules (RPR001–RPR005): no global-state RNG, no
  Python-level pair loops in kernel packages, explicit dtypes in kernel
  allocations, no mutable defaults or in-place ``Clustering.labels``
  mutation, and the ``rng: np.random.Generator | int | None`` signature
  convention.  Run as ``python -m repro.analysis.lint src tests``.
* :mod:`repro.analysis.contracts` — debug-mode runtime contracts
  (``REPRO_CONTRACTS=1``) validating instance symmetry/range/triangle
  inequality, canonical labels, and streaming drift bounds.

``contracts`` is imported eagerly (the core hooks need its flag); the
linter is import-on-demand so library users never pay for it.
"""

from .contracts import (
    ContractViolation,
    check_canonical_labels,
    check_distance_matrix,
    check_stream_drift,
    contracts,
    contracts_enabled,
    disable_contracts,
    enable_contracts,
)

__all__ = [
    "ContractViolation",
    "check_canonical_labels",
    "check_distance_matrix",
    "check_stream_drift",
    "contracts",
    "contracts_enabled",
    "disable_contracts",
    "enable_contracts",
]
