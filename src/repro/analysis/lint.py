"""repolint — AST lint rules enforcing this repository's correctness invariants.

The reproduction's guarantees rest on conventions that plain Python never
checks: stochastic code must thread an explicit ``numpy.random.Generator``
(seed-determinism), hot paths must stay vectorized (the paper's §4
algorithms are only competitive through the blocked kernels), kernel
allocations must pin their dtype (float32/float64 splits are part of the
memory model), and :class:`~repro.core.partition.Clustering` labels are
immutable.  ``repolint`` turns those conventions into machine-checked
rules over the stdlib :mod:`ast` — no third-party dependencies.

Rules
-----

=======  ==============================================================
RPR001   No global-state RNG: module-level ``np.random.<fn>()`` and
         stdlib ``random.<fn>()`` calls are banned everywhere —
         randomness must flow through a threaded
         ``numpy.random.Generator`` (``np.random.default_rng`` and the
         Generator/BitGenerator constructors are allowed).
RPR002   No O(n²) Python-level pair loops in ``core/``, ``algorithms/``
         and ``stream/``: two nested ``for _ in range(...)`` loops that
         index a pairwise matrix with both loop variables must be
         replaced by the blocked vectorized kernels.
RPR003   Array allocations (``np.zeros/empty/full/ones``) in kernel
         packages (``core``, ``stream``, ``algorithms``, ``cluster``,
         ``consensus``, ``baselines``) must pass an explicit ``dtype``.
RPR004   No mutable default arguments, and no in-place mutation of
         ``Clustering.labels`` (assigning into ``<expr>.labels[...]``
         or calling a mutating ndarray method on it) — take a
         ``.copy()`` first.
RPR005   Public library functions taking randomness must follow the
         signature convention ``rng: np.random.Generator | int | None``
         (parameters named ``seed`` / ``random_state`` are rejected).
RPR006   No direct ``multiprocessing`` pool construction outside
         ``repro/parallel/`` — importing or calling ``Pool`` /
         ``ThreadPool`` (including ``get_context(...).Pool``) elsewhere
         bypasses the start-method policy and the shared-memory
         conventions of :func:`repro.parallel.build.pool`.
RPR007   No raw ``time.perf_counter()`` (or ``perf_counter_ns``) in
         library code outside ``repro/obs/`` — ad-hoc timing drifts out
         of the observability surface; wrap the code in a
         :func:`repro.obs.span` and read ``Span.seconds`` instead.
RPR008   No direct ``.X`` / ``._X`` pair-matrix access in library code
         outside ``repro/core/`` and ``repro/parallel/build.py`` — it
         materializes (or assumes) the dense ``(n, n)`` matrix and
         breaks the lazy backend; go through the
         :class:`~repro.core.backend.PairDistanceBackend` API
         (``instance.backend.row_block/gather/matvec/...``) instead.
RPR009   No blocking calls directly inside ``async def`` bodies under
         ``repro/serve/``: ``time.sleep``, ``open`` and
         ``Path.read_text``-style file I/O, numpy array file I/O
         (``np.load``/``np.save``/...), and worker-pool construction or
         ``pool().map``-style fan-out all stall the event loop — await
         ``loop.run_in_executor(...)`` (or ``asyncio.sleep``) instead.
RPR014   No hand-rolled method-dispatch tables in library code outside
         ``repro/registry/``: a module/class-level dict literal mapping
         ≥2 method-name strings to callables under a ``*METHOD*`` /
         ``*DISPATCH*`` / ``*SOLVER*`` name, or an if/elif chain
         comparing a ``method``-like variable against ≥3 string
         literals, re-creates exactly the divergent tables the registry
         refactor removed — register a :class:`repro.registry.MethodSpec`
         and resolve through :func:`repro.registry.get_method` instead.
=======  ==============================================================

Suppressions
------------

Append ``# repolint: disable=RPR001`` (comma-separate several codes) to
the flagged line, or put ``# repolint: disable-file=RPR002`` on a line of
its own to silence a rule for the whole file.  Directives are extracted
from real comment tokens (:mod:`repro.analysis.suppress`) — one inside a
string literal does nothing — a directive on any line of a multi-line
statement covers the whole statement, and naming an unknown rule code is
an ``RPR000`` error, not a silent no-op.  The transitive variants of
these rules (RPR010–RPR013) live in :mod:`repro.analysis.flow`.

Usage
-----

::

    python -m repro.analysis.lint src tests            # text report
    python -m repro.analysis.lint --json src tests     # machine-readable
    python -m repro.analysis.lint --list-rules

Exit status is 0 when clean, 1 when findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import sys
from pathlib import Path, PurePath
from typing import Iterable, Iterator, Sequence

from .suppress import extract_suppressions

__all__ = ["RULES", "Finding", "lint_source", "lint_file", "lint_paths", "main"]

#: Rule id -> one-line description (shown by ``--list-rules``).
RULES: dict[str, str] = {
    "RPR001": "global-state RNG call; thread a numpy.random.Generator instead",
    "RPR002": "O(n^2) Python-level pair loop over a pairwise matrix; use the blocked kernels",
    "RPR003": "array allocation without an explicit dtype in a kernel module",
    "RPR004": "mutable default argument / in-place mutation of Clustering.labels",
    "RPR005": "randomness parameter must follow `rng: np.random.Generator | int | None`",
    "RPR006": "direct multiprocessing pool use outside repro.parallel; use repro.parallel.build.pool",
    "RPR007": "raw time.perf_counter() outside repro.obs; wrap the code in a repro.obs span",
    "RPR008": "direct .X/._X pair-matrix access outside repro.core; use the backend API",
    "RPR009": "blocking call inside an async def in repro.serve; use run_in_executor/asyncio.sleep",
    "RPR014": "hand-rolled method dispatch outside repro.registry; register a MethodSpec instead",
}

#: Subpackages of ``repro`` whose files RPR002 applies to.
PAIR_LOOP_PACKAGES = frozenset({"core", "algorithms", "stream"})

#: Subpackages of ``repro`` counted as kernel modules for RPR003.
KERNEL_PACKAGES = frozenset(
    {"core", "stream", "algorithms", "cluster", "consensus", "baselines", "parallel"}
)

#: The one subpackage allowed to construct multiprocessing pools (RPR006).
POOL_PACKAGE = "parallel"

#: The one subpackage allowed to call ``time.perf_counter`` (RPR007).
TIMING_PACKAGE = "obs"

#: The one subpackage allowed to touch ``.X`` / ``._X`` directly (RPR008).
MATRIX_PACKAGE = "core"

#: The event-loop subpackage whose ``async def`` bodies RPR009 applies to.
ASYNC_PACKAGE = "serve"

#: The one subpackage allowed to hold method-dispatch tables (RPR014).
REGISTRY_PACKAGE = "registry"

#: Substrings (lowercased) that mark a dict name as a dispatch table (RPR014).
_DISPATCH_NAME_HINTS = ("method", "dispatch", "solver")

#: Variable-name substrings RPR014 treats as a method selector in if/elif chains.
_METHOD_VAR_HINTS = ("method", "algorithm", "inner")

#: Branches in an if/elif chain comparing a method name against string
#: literals before RPR014 calls it a dispatch table.
_DISPATCH_CHAIN_THRESHOLD = 3

#: numpy functions that hit the filesystem (RPR009 in async bodies).
_NP_FILE_IO = frozenset(
    {"load", "save", "savez", "savez_compressed", "loadtxt", "savetxt", "genfromtxt", "fromfile"}
)

#: ``Path``-style blocking file-I/O methods (RPR009 in async bodies).
_PATH_IO_METHODS = frozenset({"read_text", "write_text", "read_bytes", "write_bytes"})

#: Pool fan-out methods (RPR009 on ``pool(...).map`` in async bodies).
_POOL_MAP_METHODS = frozenset({"map", "starmap", "imap", "imap_unordered", "apply"})

#: Library files outside ``repro/core/`` still allowed to touch the raw
#: matrix (RPR008): the shared-memory fan-out must see the backing buffer.
MATRIX_ACCESS_FILES = (("repro", "parallel", "build.py"),)

#: Attribute names RPR008 treats as raw pair-matrix access.
_MATRIX_ATTRS = frozenset({"X", "_X"})

#: ``time`` attributes that RPR007 treats as ad-hoc profiling clocks.
_PERF_CLOCKS = frozenset({"perf_counter", "perf_counter_ns"})

#: ``multiprocessing`` attributes that construct worker pools.
_POOL_CONSTRUCTORS = frozenset({"Pool", "ThreadPool"})

#: numpy.random attributes that do NOT touch global RNG state.
ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: stdlib ``random`` attributes that are instance constructors, not global state.
ALLOWED_STDLIB_RANDOM = frozenset({"Random", "SystemRandom"})

#: ndarray methods that mutate in place (RPR004 on ``<expr>.labels``).
_NDARRAY_MUTATORS = frozenset(
    {"sort", "fill", "put", "partition", "resize", "setfield", "setflags", "itemset"}
)

_ALLOC_DTYPE_POSITION = {"zeros": 1, "empty": 1, "ones": 1, "full": 2}


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint finding: a rule violated at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return dataclasses.asdict(self)


def _repro_subpackage(path: str) -> str | None:
    """The subpackage of ``repro`` a file lives in.

    Returns e.g. ``"core"`` for ``src/repro/core/instance.py``, ``""`` for
    top-level modules like ``src/repro/cli.py``, and ``None`` for files
    outside the library (tests, benchmarks, fixture snippets).
    """
    parts = PurePath(path).parts
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    below = parts[anchor + 1 :]
    if len(below) <= 1:
        return ""
    return below[0]


def _dotted_name(node: ast.expr) -> tuple[str, ...] | None:
    """Flatten an ``a.b.c`` attribute chain to ``("a", "b", "c")``."""
    names: list[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
        return tuple(reversed(names))
    return None


class _Checker(ast.NodeVisitor):
    """Single-pass visitor implementing all repolint rules for one file."""

    def __init__(self, path: str, subpackage: str | None) -> None:
        self._path = path
        self._in_library = subpackage is not None
        self._check_pair_loops = subpackage in PAIR_LOOP_PACKAGES
        self._check_alloc_dtype = subpackage in KERNEL_PACKAGES
        self._check_pools = subpackage != POOL_PACKAGE
        self._check_perf_clock = self._in_library and subpackage != TIMING_PACKAGE
        parts = PurePath(path).parts
        self._check_matrix_access = (
            self._in_library
            and subpackage != MATRIX_PACKAGE
            and not any(parts[-len(tail) :] == tail for tail in MATRIX_ACCESS_FILES)
        )
        self.findings: list[Finding] = []
        # Names the file binds to numpy, numpy.random, and stdlib random.
        self._numpy_aliases: set[str] = set()
        self._numpy_random_aliases: set[str] = set()
        self._stdlib_random_aliases: set[str] = set()
        # Names bound to multiprocessing, its pool submodules, and
        # get_context (RPR006).
        self._mp_aliases: set[str] = set()
        self._mp_pool_aliases: set[str] = set()
        self._mp_get_context_aliases: set[str] = set()
        # Names bound to the stdlib ``time`` module (RPR007, RPR009).
        self._time_aliases: set[str] = set()
        # Names bound to ``time.sleep`` via `from time import sleep` (RPR009).
        self._sleep_aliases: set[str] = set()
        # Whether each enclosing function def is async (RPR009 scope).
        self._check_async_blocking = subpackage == ASYNC_PACKAGE
        self._function_stack: list[bool] = []
        # For loops already reported (avoid duplicate RPR002 per nest).
        self._reported_pair_loops: set[int] = set()
        # RPR014 scope: library code outside the registry package itself.
        self._check_method_tables = self._in_library and subpackage != REGISTRY_PACKAGE
        # elif continuations already consumed by a reported chain (RPR014).
        self._elif_children: set[int] = set()

    # -- helpers -------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self._path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    # -- imports (alias tracking + RPR001 on `from` imports) -----------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                if alias.name == "numpy.random" and alias.asname:
                    self._numpy_random_aliases.add(alias.asname)
                else:
                    self._numpy_aliases.add(bound)
            elif alias.name == "random":
                self._stdlib_random_aliases.add(bound)
            elif alias.name == "time":
                self._time_aliases.add(bound)
            elif alias.name == "multiprocessing":
                self._mp_aliases.add(bound)
            elif alias.name.startswith("multiprocessing."):
                if alias.asname and alias.name in ("multiprocessing.pool", "multiprocessing.dummy"):
                    self._mp_pool_aliases.add(alias.asname)
                else:
                    self._mp_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._numpy_random_aliases.add(alias.asname or "random")
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in ALLOWED_NP_RANDOM:
                    self._report(
                        node,
                        "RPR001",
                        f"`from numpy.random import {alias.name}` pulls a global-state "
                        "RNG function; thread a Generator instead",
                    )
        elif node.module == "random":
            for alias in node.names:
                if alias.name not in ALLOWED_STDLIB_RANDOM:
                    self._report(
                        node,
                        "RPR001",
                        f"`from random import {alias.name}` uses the global stdlib RNG; "
                        "thread a numpy Generator instead",
                    )
        elif node.module == "multiprocessing" and self._check_pools:
            for alias in node.names:
                if alias.name in _POOL_CONSTRUCTORS:
                    self._report(
                        node,
                        "RPR006",
                        f"`from multiprocessing import {alias.name}` outside repro.parallel; "
                        "use `repro.parallel.build.pool` instead",
                    )
                elif alias.name == "pool":
                    self._mp_pool_aliases.add(alias.asname or "pool")
                elif alias.name == "get_context":
                    self._mp_get_context_aliases.add(alias.asname or "get_context")
        elif node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    self._sleep_aliases.add(alias.asname or "sleep")
                elif alias.name in _PERF_CLOCKS and self._check_perf_clock:
                    self._report(
                        node,
                        "RPR007",
                        f"`from time import {alias.name}` outside repro.obs; wrap the "
                        "timed code in a `repro.obs.span` and read `Span.seconds`",
                    )
        elif node.module in ("multiprocessing.pool", "multiprocessing.dummy") and self._check_pools:
            for alias in node.names:
                if alias.name in _POOL_CONSTRUCTORS:
                    self._report(
                        node,
                        "RPR006",
                        f"`from {node.module} import {alias.name}` outside repro.parallel; "
                        "use `repro.parallel.build.pool` instead",
                    )
        self.generic_visit(node)

    # -- calls (RPR001 global RNG, RPR003 dtype, RPR004 mutators) ------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            self._check_rng_call(node, dotted)
            self._check_allocation(node, dotted)
            self._check_pool_call(node, dotted)
            self._check_perf_clock_call(node, dotted)
        self._check_context_pool_call(node)
        self._check_labels_mutator_call(node)
        self._check_async_blocking_call(node, dotted)
        self.generic_visit(node)

    # -- RPR009: blocking calls inside async def bodies ----------------

    def _check_async_blocking_call(self, node: ast.Call, dotted: tuple[str, ...] | None) -> None:
        if not (
            self._check_async_blocking
            and self._function_stack
            and self._function_stack[-1]
        ):
            return
        message = self._blocking_call_message(node, dotted)
        if message is not None:
            self._report(
                node,
                "RPR009",
                f"{message} blocks the event loop inside an `async def`; "
                "await `loop.run_in_executor(...)` (or `asyncio.sleep`) instead",
            )

    def _blocking_call_message(
        self, node: ast.Call, dotted: tuple[str, ...] | None
    ) -> str | None:
        func = node.func
        if dotted is not None:
            if len(dotted) == 2 and dotted[0] in self._time_aliases and dotted[1] == "sleep":
                return f"`{'.'.join(dotted)}()`"
            if len(dotted) == 1 and dotted[0] in self._sleep_aliases:
                return f"`{dotted[0]}()` (time.sleep)"
            if len(dotted) == 1 and dotted[0] == "open":
                return "`open()`"
            if len(dotted) == 2 and dotted[0] in self._numpy_aliases and dotted[1] in _NP_FILE_IO:
                return f"file I/O `{'.'.join(dotted)}()`"
            if dotted[-1] == "pool" and len(dotted) <= 2:
                return f"worker-pool construction `{'.'.join(dotted)}()`"
        if isinstance(func, ast.Attribute):
            if func.attr in _PATH_IO_METHODS:
                return f"file I/O `.{func.attr}()`"
            if func.attr in _POOL_MAP_METHODS and isinstance(func.value, ast.Call):
                inner = _dotted_name(func.value.func)
                if inner is not None and inner[-1] == "pool" and len(inner) <= 2:
                    return f"`pool(...).{func.attr}()` fan-out"
        return None

    # -- RPR008: raw pair-matrix access --------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._check_matrix_access and node.attr in _MATRIX_ATTRS:
            self._report(
                node,
                "RPR008",
                f"direct `.{node.attr}` pair-matrix access outside repro.core; "
                "go through the `instance.backend` API "
                "(`row_block`/`gather`/`matvec`/`materialize`)",
            )
        self.generic_visit(node)

    # -- RPR006: multiprocessing pool construction ---------------------

    def _check_pool_call(self, node: ast.Call, dotted: tuple[str, ...]) -> None:
        if not self._check_pools or dotted[-1] not in _POOL_CONSTRUCTORS:
            return
        flagged = (
            (len(dotted) == 2 and dotted[0] in self._mp_aliases)
            or (len(dotted) == 2 and dotted[0] in self._mp_pool_aliases)
            or (
                len(dotted) == 3
                and dotted[0] in self._mp_aliases
                and dotted[1] in ("pool", "dummy")
            )
        )
        if flagged:
            self._report(
                node,
                "RPR006",
                f"`{'.'.join(dotted)}()` outside repro.parallel; "
                "use `repro.parallel.build.pool` instead",
            )

    # -- RPR007: ad-hoc profiling clocks -------------------------------

    def _check_perf_clock_call(self, node: ast.Call, dotted: tuple[str, ...]) -> None:
        if not self._check_perf_clock:
            return
        if len(dotted) == 2 and dotted[0] in self._time_aliases and dotted[1] in _PERF_CLOCKS:
            self._report(
                node,
                "RPR007",
                f"`{'.'.join(dotted)}()` outside repro.obs; wrap the timed code in a "
                "`repro.obs.span` and read `Span.seconds`",
            )

    def _check_context_pool_call(self, node: ast.Call) -> None:
        """The ``get_context(...).Pool(...)`` form of RPR006."""
        func = node.func
        if not (
            self._check_pools
            and isinstance(func, ast.Attribute)
            and func.attr in _POOL_CONSTRUCTORS
            and isinstance(func.value, ast.Call)
        ):
            return
        inner = func.value.func
        inner_dotted = _dotted_name(inner)
        if inner_dotted is None or inner_dotted[-1] != "get_context":
            return
        if (len(inner_dotted) == 1 and inner_dotted[0] in self._mp_get_context_aliases) or (
            len(inner_dotted) == 2 and inner_dotted[0] in self._mp_aliases
        ):
            self._report(
                node,
                "RPR006",
                f"`get_context(...).{func.attr}()` outside repro.parallel; "
                "use `repro.parallel.build.pool` instead",
            )

    def _check_rng_call(self, node: ast.Call, dotted: tuple[str, ...]) -> None:
        if (
            len(dotted) >= 3
            and dotted[0] in self._numpy_aliases
            and dotted[1] == "random"
            and dotted[2] not in ALLOWED_NP_RANDOM
        ):
            self._report(
                node,
                "RPR001",
                f"`{'.'.join(dotted)}()` mutates numpy's global RNG state; "
                "thread a `np.random.Generator`",
            )
        elif (
            len(dotted) >= 2
            and dotted[0] in self._numpy_random_aliases
            and dotted[1] not in ALLOWED_NP_RANDOM
        ):
            self._report(
                node,
                "RPR001",
                f"`{'.'.join(dotted)}()` mutates numpy's global RNG state; "
                "thread a `np.random.Generator`",
            )
        elif (
            len(dotted) == 2
            and dotted[0] in self._stdlib_random_aliases
            and dotted[1] not in ALLOWED_STDLIB_RANDOM
        ):
            self._report(
                node,
                "RPR001",
                f"`{'.'.join(dotted)}()` uses the stdlib global RNG; "
                "thread a `np.random.Generator`",
            )

    def _check_allocation(self, node: ast.Call, dotted: tuple[str, ...]) -> None:
        if not self._check_alloc_dtype:
            return
        if len(dotted) != 2 or dotted[0] not in self._numpy_aliases:
            return
        position = _ALLOC_DTYPE_POSITION.get(dotted[1])
        if position is None:
            return
        has_dtype = any(kw.arg == "dtype" for kw in node.keywords) or len(node.args) > position
        if not has_dtype:
            self._report(
                node,
                "RPR003",
                f"`{'.'.join(dotted)}` in a kernel module must pass an explicit dtype",
            )

    # -- RPR004: Clustering.labels mutation ----------------------------

    @staticmethod
    def _is_labels_attribute(node: ast.expr) -> bool:
        return isinstance(node, ast.Attribute) and node.attr == "labels"

    def _check_labels_mutator_call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _NDARRAY_MUTATORS
            and self._is_labels_attribute(func.value)
        ):
            self._report(
                node,
                "RPR004",
                f"in-place `.{func.attr}()` on `.labels`; Clustering labels are "
                "immutable — work on a `.copy()`",
            )

    def _check_labels_store(self, target: ast.expr) -> None:
        if isinstance(target, ast.Subscript) and self._is_labels_attribute(target.value):
            self._report(
                target,
                "RPR004",
                "assignment into `.labels[...]`; Clustering labels are immutable — "
                "work on a `.copy()`",
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_labels_store(element)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_labels_store(target)
        self._check_dispatch_dict(node.targets, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_dispatch_dict([node.target], node.value, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_labels_store(node.target)
        self.generic_visit(node)

    # -- RPR014: hand-rolled method dispatch ---------------------------

    def _check_dispatch_dict(
        self, targets: Sequence[ast.expr], value: ast.expr, node: ast.AST
    ) -> None:
        """Flag module/class-level ``*METHOD*`` dicts of name -> callable."""
        if not self._check_method_tables or self._function_stack:
            return
        if not isinstance(value, ast.Dict):
            return
        named = [
            target.id
            for target in targets
            if isinstance(target, ast.Name)
            and any(hint in target.id.lower() for hint in _DISPATCH_NAME_HINTS)
        ]
        if not named:
            return
        string_keys = sum(
            isinstance(key, ast.Constant) and isinstance(key.value, str)
            for key in value.keys
        )
        callable_values = sum(
            isinstance(item, (ast.Name, ast.Attribute, ast.Lambda))
            for item in value.values
        )
        if string_keys >= 2 and callable_values >= 2:
            self._report(
                node,
                "RPR014",
                f"`{named[0]}` is a hand-rolled method-dispatch table; register the "
                "methods with `repro.registry.register_method` and resolve them "
                "through `repro.registry.get_method` instead",
            )

    @staticmethod
    def _method_selector(test: ast.expr) -> str | None:
        """The dumped selector expr when ``test`` is ``<method-ish> == "str"``.

        Also matches ``<method-ish> in ("a", "b")``.  The selector counts
        as method-ish when its terminal identifier contains ``method`` /
        ``algorithm`` / ``inner``.
        """
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
            return None
        if not isinstance(test.ops[0], (ast.Eq, ast.In)):
            return None
        comparator = test.comparators[0]
        if isinstance(test.ops[0], ast.Eq):
            if not (isinstance(comparator, ast.Constant) and isinstance(comparator.value, str)):
                return None
        else:
            if not (
                isinstance(comparator, (ast.Tuple, ast.List, ast.Set))
                and comparator.elts
                and all(
                    isinstance(item, ast.Constant) and isinstance(item.value, str)
                    for item in comparator.elts
                )
            ):
                return None
        left = test.left
        terminal: str | None = None
        if isinstance(left, ast.Name):
            terminal = left.id
        elif isinstance(left, ast.Attribute):
            terminal = left.attr
        elif isinstance(left, ast.Subscript):
            index = left.slice
            if isinstance(index, ast.Constant) and isinstance(index.value, str):
                terminal = index.value
        if terminal is None or not any(
            hint in terminal.lower() for hint in _METHOD_VAR_HINTS
        ):
            return None
        return ast.dump(left)

    def visit_If(self, node: ast.If) -> None:
        if self._check_method_tables and id(node) not in self._elif_children:
            selectors: list[str | None] = []
            current: ast.If | None = node
            while current is not None:
                selectors.append(self._method_selector(current.test))
                if len(current.orelse) == 1 and isinstance(current.orelse[0], ast.If):
                    current = current.orelse[0]
                    self._elif_children.add(id(current))
                else:
                    current = None
            for selector in set(filter(None, selectors)):
                if selectors.count(selector) >= _DISPATCH_CHAIN_THRESHOLD:
                    self._report(
                        node,
                        "RPR014",
                        "if/elif chain dispatching on a method name; register the "
                        "methods with `repro.registry.register_method` and resolve "
                        "them through `repro.registry.get_method` instead",
                    )
                    break
        self.generic_visit(node)

    # -- RPR002: nested pair loops -------------------------------------

    @staticmethod
    def _simple_range_var(node: ast.For) -> str | None:
        """The loop variable when ``node`` is ``for <name> in range(...)``.

        Three-argument ranges (an explicit step) are treated as blocked
        iteration and skipped — that is exactly the sanctioned pattern of
        the row-blocked kernels.
        """
        if not isinstance(node.target, ast.Name):
            return None
        call = node.iter
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "range"
            and len(call.args) <= 2
        ):
            return None
        return node.target.id

    @staticmethod
    def _indexes_pair(node: ast.AST, first: str, second: str) -> bool:
        """Whether any subscript under ``node`` indexes with both loop vars."""

        def uses(expr: ast.expr, name: str) -> bool:
            return any(
                isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(expr)
            )

        for sub in ast.walk(node):
            if not isinstance(sub, ast.Subscript):
                continue
            index = sub.slice
            if isinstance(index, ast.Tuple) and len(index.elts) >= 2:
                if uses(index, first) and uses(index, second):
                    return True
            # Chained form: matrix[i][j]
            if isinstance(sub.value, ast.Subscript):
                if (uses(sub.slice, first) and uses(sub.value.slice, second)) or (
                    uses(sub.slice, second) and uses(sub.value.slice, first)
                ):
                    return True
        return False

    def visit_For(self, node: ast.For) -> None:
        if self._check_pair_loops and id(node) not in self._reported_pair_loops:
            outer_var = self._simple_range_var(node)
            if outer_var is not None:
                for inner in ast.walk(node):
                    if inner is node or not isinstance(inner, ast.For):
                        continue
                    inner_var = self._simple_range_var(inner)
                    if inner_var is None or inner_var == outer_var:
                        continue
                    if self._indexes_pair(inner, outer_var, inner_var):
                        self._reported_pair_loops.add(id(inner))
                        self._report(
                            node,
                            "RPR002",
                            f"nested Python loops over `range` index a pairwise matrix "
                            f"with `{outer_var}`/`{inner_var}`; use the blocked "
                            "vectorized kernels",
                        )
                        break
        self.generic_visit(node)

    # -- RPR004 (defaults) + RPR005 (rng signature) --------------------

    def _check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        arguments = node.args
        for default in list(arguments.defaults) + [d for d in arguments.kw_defaults if d]:
            if self._is_mutable_default(default):
                self._report(
                    default,
                    "RPR004",
                    f"mutable default argument in `{node.name}`; default to None "
                    "and allocate inside the function",
                )
        if self._in_library and not node.name.startswith("_"):
            for arg in arguments.posonlyargs + arguments.args + arguments.kwonlyargs:
                if arg.arg in ("seed", "random_state"):
                    self._report(
                        arg,
                        "RPR005",
                        f"parameter `{arg.arg}` of public `{node.name}` breaks the "
                        "randomness convention; name it `rng: np.random.Generator "
                        "| int | None`",
                    )
                elif arg.arg == "rng":
                    annotation = (
                        ast.unparse(arg.annotation) if arg.annotation is not None else ""
                    )
                    if not (
                        "Generator" in annotation
                        and "int" in annotation
                        and "None" in annotation
                    ):
                        self._report(
                            arg,
                            "RPR005",
                            f"`rng` parameter of public `{node.name}` must be "
                            "annotated `np.random.Generator | int | None`",
                        )

    @staticmethod
    def _is_mutable_default(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "dict", "set", "bytearray")
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self._function_stack.append(False)
        try:
            self.generic_visit(node)
        finally:
            self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self._function_stack.append(True)
        try:
            self.generic_visit(node)
        finally:
            self._function_stack.pop()


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one Python source string; returns the unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                rule="RPR000",
                message=f"syntax error: {error.msg}",
            )
        ]
    checker = _Checker(path, _repro_subpackage(path))
    checker.visit(tree)
    suppressions = extract_suppressions(source, tree)
    kept = [
        finding for finding in checker.findings if finding.rule not in suppressions.active(finding.line)
    ]
    kept.extend(
        Finding(
            path=path,
            line=line,
            col=1,
            rule="RPR000",
            message=f"unknown rule code {code!r} in repolint suppression",
        )
        for line, code in suppressions.errors
    )
    return sorted(kept, key=lambda f: (f.line, f.col, f.rule))


def lint_file(path: str | Path) -> list[Finding]:
    """Lint one file on disk."""
    file_path = Path(path)
    return lint_source(file_path.read_text(encoding="utf-8"), str(file_path))


def _iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[str | Path]) -> tuple[list[Finding], int]:
    """Lint files and directories; returns ``(findings, files_checked)``."""
    findings: list[Finding] = []
    checked = 0
    for file_path in _iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(file_path))
    return findings, checked


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Repository-specific invariant linter (rules RPR001-RPR009, RPR014).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--json", action="store_true", help="emit a JSON report on stdout")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    findings, checked = lint_paths(args.paths)
    if args.json:
        print(
            json.dumps(
                {
                    "files_checked": checked,
                    "findings": [finding.as_dict() for finding in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        summary = f"{len(findings)} finding(s) in {checked} file(s)"
        print(summary if findings else f"clean: {summary}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
