"""Unified analysis entry point: ``python -m repro.analysis <paths>``.

Runs the whole static + dynamic enforcement stack in one command:

1. **repolint** (RPR001–RPR009) — per-line AST rules;
2. **flow** (RPR010–RPR013) — interprocedural call-graph passes;
3. **contracts-smoke** — a tiny aggregation run with runtime contracts
   enabled, proving the ``REPRO_CONTRACTS`` hooks still validate the
   core invariants end to end.

Exit status is non-zero when any stage fails; each stage's own report
goes to stdout under a stage banner.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable

from . import contracts
from .flow.cli import main as flow_main
from .lint import main as lint_main

__all__ = ["contracts_smoke", "main"]


def contracts_smoke() -> int:
    """Aggregate a small instance with every runtime contract armed."""
    import numpy as np

    from ..core.aggregate import aggregate

    labels = np.array(
        [[0, 0, 1, 1, 2], [0, 0, 1, 2, 2], [0, 1, 1, 1, 2]], dtype=np.int64
    ).T
    with contracts(True):
        result = aggregate(labels, method="balls")
    clustering = result.clustering
    ok = clustering.labels.shape == (5,) and result.cost >= 0.0
    print(
        f"contracts-smoke: cost={result.cost:.3f} k={clustering.k} -> "
        f"{'ok' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run repolint + flow analysis + contracts smoke in one command.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to analyze")
    parser.add_argument("--json", action="store_true", help="JSON reports from both linters")
    parser.add_argument(
        "--skip-smoke", action="store_true", help="skip the runtime contracts smoke"
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    lint_argv = list(args.paths) + (["--json"] if args.json else [])
    print("== repolint ==")
    status = lint_main(lint_argv)
    print("== flow ==")
    status = max(status, flow_main(lint_argv))
    if not args.skip_smoke:
        print("== contracts ==")
        status = max(status, contracts_smoke())
    return status


if __name__ == "__main__":
    sys.exit(main())
