"""Comment-based suppression parsing shared by repolint and the flow analyzer.

Both static-analysis tools in this package honour the same inline
directives::

    flagged_call()  # repolint: disable=RPR001
    # repolint: disable-file=RPR002

Historically these were regex-matched against *raw source lines*, so a
directive inside a string literal (or a docstring example) silently
suppressed real findings on that line.  This module extracts directives
with :mod:`tokenize` instead — only genuine ``COMMENT`` tokens count —
and adds two behaviours the raw-line scan could not offer:

* **Statement-extent expansion.**  A directive anywhere on a multi-line
  statement applies to the whole statement (so a trailing comment on the
  closing paren of a wrapped call suppresses the finding anchored at the
  call's first line).  For compound statements (``def``, ``if``, ``with``
  ...) only the *header* — decorators through the line before the first
  body statement — is expanded, never the body, so a directive on a
  ``def`` line cannot blanket-suppress the function.
* **Unknown-code errors.**  A directive naming a code outside
  :data:`KNOWN_CODES` is an error record, not a silent no-op; both
  linters surface it as an ``RPR000`` finding.

The known-code registry spans *both* tools (repolint's RPR001–RPR009 and
RPR014, and the flow analyzer's RPR010–RPR013) so that a file carrying a flow
suppression lints clean under repolint and vice versa.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize

__all__ = [
    "KNOWN_CODES",
    "Suppressions",
    "extract_suppressions",
]

#: Every valid rule code across repolint (RPR001-RPR009, RPR014) and the flow
#: analyzer (RPR010-RPR013); RPR000 is the shared analysis-error channel.
KNOWN_CODES: frozenset[str] = frozenset(f"RPR{i:03d}" for i in range(15))

_DIRECTIVE = re.compile(r"#\s*repolint:\s*(disable-file|disable)\s*=\s*([^#]*)")


@dataclasses.dataclass(frozen=True)
class Suppressions:
    """Parsed suppression directives for one source file.

    ``line_codes`` maps a physical line to the codes suppressed there —
    already expanded over statement extents, so a finding is silenced by
    checking only its own anchor line.  ``errors`` records unknown or
    malformed codes as ``(line, token)`` pairs.
    """

    line_codes: dict[int, frozenset[str]]
    file_codes: frozenset[str]
    errors: tuple[tuple[int, str], ...]

    def active(self, line: int) -> frozenset[str]:
        """Codes suppressed at ``line`` (file-wide directives included)."""
        return self.file_codes | self.line_codes.get(line, frozenset())


def _comment_tokens(source: str) -> list[tuple[int, str]]:
    """``(line, text)`` for every real comment token in ``source``.

    Tokenization errors (the caller's parser will report the syntax
    error) just end the scan: directives before the bad region still
    count.
    """
    comments: list[tuple[int, str]] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        pass
    return comments


def _parse_codes(raw: str) -> tuple[set[str], list[str]]:
    """Split a directive payload into valid codes and invalid tokens."""
    valid: set[str] = set()
    invalid: list[str] = []
    for token in raw.split(","):
        code = token.strip()
        if not code:
            continue
        if code in KNOWN_CODES:
            valid.add(code)
        else:
            invalid.append(code)
    if not valid and not invalid:
        invalid.append("<empty>")
    return valid, invalid


def _statement_extents(tree: ast.AST) -> list[tuple[int, int]]:
    """Header extents ``(start, end)`` of every statement in ``tree``.

    Simple statements span their full ``lineno..end_lineno``.  Compound
    statements span decorators through the line before their first body
    statement, so directives attach to signatures and conditions without
    leaking into bodies.
    """
    extents: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = node.end_lineno if node.end_lineno is not None else node.lineno
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            first = body[0].lineno
            end = max(start, first - 1) if first > start else start
        for decorator in getattr(node, "decorator_list", []):
            start = min(start, decorator.lineno)
        extents.append((start, end))
    return extents


def _extent_for(line: int, extents: list[tuple[int, int]]) -> tuple[int, int]:
    """The smallest statement extent containing ``line`` (or the line itself)."""
    best: tuple[int, int] | None = None
    for start, end in extents:
        if start <= line <= end:
            if best is None or (end - start, -start) < (best[1] - best[0], -best[0]):
                best = (start, end)
    return best if best is not None else (line, line)


def extract_suppressions(source: str, tree: ast.AST | None = None) -> Suppressions:
    """Parse ``# repolint: disable[-file]=`` directives from real comments.

    When ``tree`` (the parsed module) is given, per-line directives are
    expanded over the extent of the statement they sit on; without it
    they apply to their own physical line only.
    """
    extents = _statement_extents(tree) if tree is not None else []
    line_codes: dict[int, set[str]] = {}
    file_codes: set[str] = set()
    errors: list[tuple[int, str]] = []
    for line, text in _comment_tokens(source):
        for match in _DIRECTIVE.finditer(text):
            kind, payload = match.group(1), match.group(2)
            valid, invalid = _parse_codes(payload)
            errors.extend((line, token) for token in invalid)
            if kind == "disable-file":
                file_codes.update(valid)
            else:
                start, end = _extent_for(line, extents)
                for covered in range(start, end + 1):
                    line_codes.setdefault(covered, set()).update(valid)
    return Suppressions(
        line_codes={line: frozenset(codes) for line, codes in line_codes.items()},
        file_codes=frozenset(file_codes),
        errors=tuple(errors),
    )
