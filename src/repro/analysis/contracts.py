"""Debug-mode runtime contracts for the aggregation core.

The paper states invariants the code otherwise only honours by
convention: a correlation instance is a symmetric matrix in ``[0, 1]``
with zero diagonal that — when built from clusterings under the §2
coin-flip model — satisfies the triangle inequality (Gionis et al., §3);
:class:`~repro.core.partition.Clustering` labels are dense, canonical and
immutable; and the streaming engine's incrementally-maintained masses
must not drift from the batch objective.  This module turns those
statements into *runtime contracts*: cheap validation hooks compiled into
the hot constructors but executed only when contracts are enabled.

Enabling
--------

* Environment: set ``REPRO_CONTRACTS=1`` before importing (the pytest
  suite's CI job runs this way).
* Programmatic: :func:`enable_contracts` / :func:`disable_contracts`, or
  the :func:`contracts` context manager for a scoped toggle.
* Tests: an autouse fixture in ``tests/conftest.py`` enables contracts
  for every test (opt out with ``@pytest.mark.no_contracts``).

Violations raise :class:`ContractViolation` (an ``AssertionError``
subclass: contract failures are programming errors, not input errors —
input validation raises ``ValueError`` as usual).

Costs are bounded: matrix checks are O(n²) vectorized (comparable to the
operation they guard), and the O(n³)-ish triangle-inequality sweep only
runs up to :data:`TRIANGLE_MAX_N` objects.

This module deliberately imports nothing from the rest of the library so
that core modules can import it without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "ContractViolation",
    "contracts_enabled",
    "enable_contracts",
    "disable_contracts",
    "contracts",
    "check_distance_matrix",
    "check_canonical_labels",
    "check_stream_drift",
    "TRIANGLE_MAX_N",
]

#: Largest instance on which the exhaustive triangle-inequality sweep runs.
TRIANGLE_MAX_N = 128

#: Absolute slack for float comparisons (float32 instances round at ~1e-7).
_ATOL = 1e-6


class ContractViolation(AssertionError):
    """An internal invariant the paper (or the design) guarantees was broken."""


_enabled = os.environ.get("REPRO_CONTRACTS", "").strip().lower() not in (
    "",
    "0",
    "false",
    "off",
    "no",
)


def contracts_enabled() -> bool:
    """Whether runtime contracts are currently active."""
    return _enabled


def enable_contracts() -> None:
    """Turn runtime contracts on for the process."""
    global _enabled
    _enabled = True


def disable_contracts() -> None:
    """Turn runtime contracts off for the process."""
    global _enabled
    _enabled = False


@contextmanager
def contracts(enabled: bool = True) -> Iterator[None]:
    """Scoped toggle: ``with contracts(): ...`` restores the prior state."""
    global _enabled
    previous = _enabled
    _enabled = enabled
    try:
        yield
    finally:
        _enabled = previous


def _fail(message: str, context: str) -> None:
    raise ContractViolation(f"{context}: {message}" if context else message)


def max_triangle_violation(X: np.ndarray) -> float:
    """Largest ``X[u, w] - X[u, v] - X[v, w]`` over all triples (≤ 0 = metric)."""
    dense = np.asarray(X, dtype=np.float64)
    n = dense.shape[0]
    worst = -np.inf
    for v in range(n):
        through_v = dense - dense[:, v][:, None] - dense[v, :][None, :]
        np.fill_diagonal(through_v, -np.inf)
        through_v[v, :] = -np.inf
        through_v[:, v] = -np.inf
        worst = max(worst, float(through_v.max()))
    return worst


def check_distance_matrix(
    X: np.ndarray,
    check_triangle: bool = False,
    context: str = "CorrelationInstance",
) -> None:
    """Contract: a correlation-instance distance matrix is well formed.

    Checks squareness, floating dtype, zero diagonal, symmetry, and the
    ``[0, 1]`` range; with ``check_triangle=True`` (only meaningful for
    instances built from clusterings under the coin-flip model) also the
    §3 triangle inequality, on instances up to :data:`TRIANGLE_MAX_N`
    objects.
    """
    matrix = np.asarray(X)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        _fail(f"distance matrix must be square, got shape {matrix.shape}", context)
    if not np.issubdtype(matrix.dtype, np.floating):
        _fail(f"distances must be floating point, got {matrix.dtype}", context)
    diagonal = np.diagonal(matrix)
    if np.any(diagonal != 0):
        _fail("distance matrix must have a zero diagonal", context)
    if not np.allclose(matrix, matrix.T, atol=_ATOL):
        _fail("distance matrix must be symmetric", context)
    low = float(matrix.min())
    high = float(matrix.max())
    if low < -_ATOL or high > 1.0 + _ATOL:
        _fail(f"distances must lie in [0, 1], found range [{low}, {high}]", context)
    if check_triangle and matrix.shape[0] <= TRIANGLE_MAX_N:
        worst = max_triangle_violation(matrix)
        if worst > _ATOL:
            _fail(
                f"triangle inequality violated by {worst} (aggregation instances "
                "are metric — §3, Observation 1)",
                context,
            )


def check_canonical_labels(labels: np.ndarray, context: str = "Clustering") -> None:
    """Contract: a label vector is dense and canonical.

    Canonical means values are exactly ``0..k-1``, every label occurs,
    and labels are numbered in order of first appearance (object 0 is in
    cluster 0, the first object outside cluster 0 is in cluster 1, ...).
    This is the postcondition of ``Clustering.__init__`` that every
    equality/hash comparison in the library relies on.
    """
    arr = np.asarray(labels)
    if arr.ndim != 1 or arr.size == 0:
        _fail(f"labels must be a non-empty vector, got shape {arr.shape}", context)
    if not np.issubdtype(arr.dtype, np.integer):
        _fail(f"labels must be integers, got dtype {arr.dtype}", context)
    if int(arr.min()) < 0:
        _fail("labels must be non-negative", context)
    k = int(arr.max()) + 1
    values, first_index = np.unique(arr, return_index=True)
    if values.size != k:
        missing = sorted(set(range(k)) - set(values.tolist()))[:5]
        _fail(f"labels must be dense 0..k-1; e.g. missing {missing}", context)
    if np.any(np.diff(first_index) < 0):
        _fail("labels must be canonical (numbered by first appearance)", context)


def check_stream_drift(
    fast_cost: float,
    exact_cost: float,
    pairs: float,
    context: str = "StreamingAggregator",
) -> None:
    """Contract: incrementally-maintained cost tracks the batch recomputation.

    The streaming engine reads the consensus cost off masses it maintains
    affinely across updates; ``exact_cost`` is the same objective
    recomputed from scratch on the current instance.  The two may differ
    only by accumulated float rounding, which the engine's periodic
    resync bounds — a gap beyond ``~1e-8`` per pair means the mass
    update logic (not float noise) has diverged.
    """
    tolerance = 1e-8 * max(1.0, pairs) + 1e-9 * abs(exact_cost)
    drift = abs(fast_cost - exact_cost)
    if drift > tolerance:
        _fail(
            f"incremental cost {fast_cost!r} drifted from batch cost {exact_cost!r} "
            f"by {drift} (tolerance {tolerance})",
            context,
        )
