"""Module-level call graph over the ``repro`` package (stdlib ``ast`` only).

The flow analyzer's three dataflow passes (blocking propagation, RNG
provenance, resource lifecycle) all consume the same whole-program view
built here:

* :class:`ModuleIndex` — parses every file under the analyzed roots,
  derives canonical dotted names (``repro.parallel.build.pool``,
  ``repro.serve.sessions.Session._worker``), and records three symbol
  kinds per module: defined functions/methods, classes (with their base
  expressions for the light hierarchy pass), and import/assignment
  aliases.  Aliases make re-exports transparent: resolving
  ``repro.stream.load_checkpoint`` chases through ``stream/__init__``
  to ``repro.stream.checkpoint.load_checkpoint``.
* :class:`CallGraph` — per function, an ordered list of
  :class:`CallSite` records classifying every call in the body proper
  (nested ``def``/``class``/``lambda`` bodies belong to their own
  units): plain calls, awaited calls, worker-pool fan-out
  (``pool(...)``/``workers.map(fn, payload)``), and executor hand-off
  (``run_in_executor(None, fn, ...)`` / ``asyncio.to_thread``), plus the
  *blocking primitives* the site performs directly (the RPR009 set:
  sleep, ``open``, ``Path`` file I/O, numpy file I/O, pool construction
  and fan-out).

Soundness caveats (documented in DESIGN.md §2.5j): resolution is
name-based — calls through values the light local-type pass cannot bind
(dynamic dispatch tables, lambdas, ``getattr``) produce no edge, so the
passes under-approximate reachability rather than guessing.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path, PurePath
from typing import Iterator, Sequence

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleIndex",
    "PrimitiveOp",
    "iter_python_files",
    "module_name_for",
]

#: The sanctioned pool constructor; calling it (or raw multiprocessing
#: pools) is both a blocking primitive and the fan-out anchor.
POOL_CONSTRUCTOR = "repro.parallel.build.pool"

_MP_POOL_CONSTRUCTORS = frozenset(
    {
        "multiprocessing.Pool",
        "multiprocessing.ThreadPool",
        "multiprocessing.pool.Pool",
        "multiprocessing.pool.ThreadPool",
        "multiprocessing.dummy.Pool",
    }
)

#: Fan-out methods on pool objects (mirrors repolint's RPR009 set).
POOL_MAP_METHODS = frozenset({"map", "starmap", "imap", "imap_unordered", "apply", "apply_async"})

#: numpy functions that hit the filesystem.
_NP_FILE_IO = frozenset(
    {"load", "save", "savez", "savez_compressed", "loadtxt", "savetxt", "genfromtxt", "fromfile"}
)

#: ``Path``-style blocking file-I/O methods (receiver-agnostic).
_PATH_IO_METHODS = frozenset({"read_text", "write_text", "read_bytes", "write_bytes"})


@dataclasses.dataclass(frozen=True)
class FunctionInfo:
    """One function or method discovered by the index."""

    key: str  #: canonical dotted name, e.g. ``repro.serve.sessions.Session.submit``
    module: str
    path: str
    qualname: str  #: name within the module, e.g. ``Session.submit``
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    class_key: str | None  #: canonical class key for methods, else None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> tuple[str, ...]:
        """Positional parameter names (posonly + regular), ``self``/``cls`` included."""
        args = self.node.args
        return tuple(a.arg for a in args.posonlyargs + args.args)

    @property
    def all_params(self) -> tuple[str, ...]:
        args = self.node.args
        return self.params + tuple(a.arg for a in args.kwonlyargs)


@dataclasses.dataclass
class ClassInfo:
    """One class with base expressions resolved to canonical keys."""

    key: str
    module: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class PrimitiveOp:
    """A directly-blocking operation performed at one call site."""

    desc: str  #: human-readable, e.g. "``time.sleep()``"
    lineno: int
    col: int


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One classified call expression inside a function body."""

    node: ast.Call
    canonical: str | None  #: resolved dotted target ("numpy.load", indexed key, ...)
    callee: str | None  #: FunctionInfo key when the target is in the index
    role: str  #: "plain" | "fanout" | "executor" | "pool_ctor"
    is_await: bool
    #: Function keys invoked indirectly (map targets, executor callbacks,
    #: pool initializers) — edges of kind ``role``.
    indirect: tuple[str, ...] = ()
    #: Expressions shipped to workers/executors (map payloads, initargs,
    #: executor callback arguments) — the RNG pass's raw material.
    shipped: tuple[ast.expr, ...] = ()
    #: Blocking primitive performed directly by this site, if any.
    primitive: PrimitiveOp | None = None

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def col(self) -> int:
        return self.node.col_offset + 1


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (directories walked, sorted)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            yield path


def module_name_for(path: str) -> str:
    """Canonical dotted module name for a file path.

    Files inside a ``repro`` package tree get their real dotted name
    (``src/repro/core/instance.py`` → ``repro.core.instance``); files
    outside it (tests, benchmarks, synthetic fixtures) get a path-derived
    name that only needs to be unique within one analysis run.
    """
    parts = PurePath(path).parts
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        below = parts[anchor:]
    else:
        below = parts if len(parts) <= 3 else parts[-3:]
    stem = [p[:-3] if p.endswith(".py") else p for p in below]
    if stem and stem[-1] == "__init__":
        stem = stem[:-1]
    return ".".join(s for s in stem if s) or "unknown"


def repro_subpackage(module: str) -> str | None:
    """``"serve"`` for ``repro.serve.app``, ``""`` for ``repro.cli``, else None."""
    parts = module.split(".")
    if "repro" not in parts:
        return None
    below = parts[parts.index("repro") + 1 :]
    return below[0] if len(below) > 1 else ""


class ModuleIndex:
    """Symbol tables for every analyzed file: functions, classes, aliases."""

    def __init__(self) -> None:
        self.files: list[tuple[str, str, ast.Module]] = []  #: (path, module, tree)
        self.sources: dict[str, str] = {}  #: path -> source text
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.aliases: dict[str, str] = {}  #: canonical name -> target name
        self.constants: dict[str, ast.expr] = {}  #: module-level assignments
        self.errors: list[tuple[str, int, str]] = []  #: (path, line, message)

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, paths: Sequence[str | Path]) -> "ModuleIndex":
        index = cls()
        for file_path in iter_python_files(paths):
            index.add_file(str(file_path), file_path.read_text(encoding="utf-8"))
        index.finalize()
        return index

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "ModuleIndex":
        """Build from in-memory ``{path: source}`` (unit tests, fixtures)."""
        index = cls()
        for path, source in sources.items():
            index.add_file(path, source)
        index.finalize()
        return index

    def add_file(self, path: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            self.errors.append((path, error.lineno or 1, f"syntax error: {error.msg}"))
            return
        module = module_name_for(path)
        self.files.append((path, module, tree))
        self.sources[path] = source
        self._collect_module(path, module, tree)

    def finalize(self) -> None:
        """Resolve class bases and register method tables (post-parse)."""
        for info in self.classes.values():
            resolved: list[str] = []
            for base in info.node.bases:
                dotted = _dotted_name(base)
                if dotted is None:
                    continue
                target = self.resolve(info.module, dotted)
                if target is not None and target in self.classes:
                    resolved.append(target)
            info.bases = tuple(resolved)

    def _collect_module(self, path: str, module: str, tree: ast.Module) -> None:
        is_package = PurePath(path).name == "__init__.py"
        self._collect_imports(module, tree.body, is_package)
        self._collect_defs(path, module, tree.body, prefix="", class_key=None)

    def _collect_imports(
        self, module: str, body: Sequence[ast.stmt], is_package: bool
    ) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[f"{module}.{bound}"] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, is_package, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[f"{module}.{bound}"] = f"{base}.{alias.name}"
            elif isinstance(node, (ast.If, ast.Try)):
                # `if TYPE_CHECKING:` blocks and guarded imports.
                self._collect_imports(module, node.body, is_package)

    @staticmethod
    def _import_base(module: str, is_package: bool, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        # Relative import: climb `level` packages.  An __init__ module is
        # already named after its package by module_name_for, so level 1
        # means the module's own name, not its parent.
        parts = module.split(".")
        up = len(parts) - node.level + (1 if is_package else 0)
        if up < 0:
            return node.module
        base_parts = parts[:up] if up > 0 else []
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def _collect_defs(
        self,
        path: str,
        module: str,
        body: Sequence[ast.stmt],
        prefix: str,
        class_key: str | None,
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                key = f"{module}.{qualname}"
                info = FunctionInfo(
                    key=key,
                    module=module,
                    path=path,
                    qualname=qualname,
                    node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                    class_key=class_key,
                )
                self.functions[key] = info
                if class_key is not None:
                    self.classes[class_key].methods.setdefault(node.name, key)
                self._collect_defs(
                    path, module, node.body, prefix=f"{qualname}.", class_key=None
                )
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}{node.name}"
                key = f"{module}.{qualname}"
                self.classes[key] = ClassInfo(key=key, module=module, node=node)
                self._collect_defs(path, module, node.body, prefix=f"{qualname}.", class_key=key)
            elif isinstance(node, ast.Assign) and prefix == "":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.constants[f"{module}.{target.id}"] = node.value
            elif isinstance(node, ast.AnnAssign) and prefix == "" and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self.constants[f"{module}.{node.target.id}"] = node.value
            elif isinstance(node, (ast.If, ast.Try)):
                self._collect_defs(path, module, node.body, prefix, class_key)

    # -- resolution ----------------------------------------------------

    def chase(self, name: str) -> str:
        """Follow the alias chain from ``name`` to its terminal target."""
        seen = {name}
        while name in self.aliases:
            name = self.aliases[name]
            if name in seen:
                break
            seen.add(name)
        return name

    def is_known(self, name: str) -> bool:
        return (
            name in self.aliases
            or name in self.functions
            or name in self.classes
            or name in self.constants
        )

    def resolve(self, module: str, dotted: tuple[str, ...]) -> str | None:
        """Canonical dotted target of ``dotted`` as written in ``module``.

        Returns e.g. ``"numpy.load"``, ``"time.sleep"``, or an index key;
        ``None`` when the head name is not bound at module level (a local,
        a builtin, or truly unknown).
        """
        head = f"{module}.{dotted[0]}"
        if not self.is_known(head):
            return None
        current = self.chase(head)
        for part in dotted[1:]:
            current = self.chase(f"{current}.{part}")
        return current

    def resolve_method(self, class_key: str, method: str) -> str | None:
        """Look ``method`` up on ``class_key`` and its (resolved) bases."""
        queue = [class_key]
        seen: set[str] = set()
        while queue:
            key = queue.pop(0)
            if key in seen or key not in self.classes:
                continue
            seen.add(key)
            info = self.classes[key]
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.bases)
        return None

    def constructor_of(self, class_key: str) -> str | None:
        return self.resolve_method(class_key, "__init__")


def _dotted_name(node: ast.expr) -> tuple[str, ...] | None:
    """Flatten ``a.b.c`` to ``("a", "b", "c")``; None for non-name chains."""
    names: list[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
        return tuple(reversed(names))
    return None


def body_nodes(root: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module) -> Iterator[ast.AST]:
    """Walk a code unit's own body, excluding nested def/class/lambda bodies."""
    stack: list[ast.AST] = (
        list(root.body) if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module))
        else [root]
    )
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


class _LocalTypes:
    """Light flow-insensitive local binding pass for one function body.

    Binds local names to what a single assignment from a recognizable
    constructor makes them: a class instance, a worker pool, or a
    ``functools.partial`` wrapper.  Used to resolve method receivers and
    higher-order callbacks.
    """

    def __init__(self, index: ModuleIndex, module: str, unit: ast.AST) -> None:
        self.index = index
        self.module = module
        self.instance_of: dict[str, str] = {}  #: local name -> class key
        self.pools: set[str] = set()  #: local names bound to pool objects
        self.partials: dict[str, str] = {}  #: local name -> wrapped function key
        self.assigned: set[str] = set()  #: every locally-bound name (shadowing)
        self._scan(unit)

    def _scan(self, unit: ast.AST) -> None:
        if isinstance(unit, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = unit.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                self.assigned.add(arg.arg)
            if args.vararg is not None:
                self.assigned.add(args.vararg.arg)
            if args.kwarg is not None:
                self.assigned.add(args.kwarg.arg)
        for node in body_nodes(unit):  # type: ignore[arg-type]
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self.assigned.add(node.id)
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name) and isinstance(
                        item.context_expr, ast.Call
                    ):
                        self._bind(item.optional_vars.id, item.context_expr)
                continue
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name) or not isinstance(node.value, ast.Call):
                continue
            self._bind(target.id, node.value)

    def _bind(self, name: str, value: ast.Call) -> None:
        dotted = _dotted_name(value.func)
        if dotted is None:
            return
        resolved = self.index.resolve(self.module, dotted)
        if resolved is None:
            if dotted[-1] == "partial":
                wrapped = self._callback_key(value)
                if wrapped is not None:
                    self.partials[name] = wrapped
            return
        if resolved in self.index.classes:
            self.instance_of[name] = resolved
        elif resolved == POOL_CONSTRUCTOR or resolved in _MP_POOL_CONSTRUCTORS:
            self.pools.add(name)
        elif resolved == "functools.partial":
            wrapped = self._callback_key(value)
            if wrapped is not None:
                self.partials[name] = wrapped

    def _callback_key(self, partial_call: ast.Call) -> str | None:
        if not partial_call.args:
            return None
        dotted = _dotted_name(partial_call.args[0])
        if dotted is None:
            return None
        return self.index.resolve(self.module, dotted)


class CallGraph:
    """Classified call sites for every function (and module body) in an index."""

    def __init__(self, index: ModuleIndex) -> None:
        self.index = index
        self.sites: dict[str, list[CallSite]] = {}
        for info in index.functions.values():
            self.sites[info.key] = self._analyze_unit(
                info.module, info.node, class_key=info.class_key, func=info
            )

    # -- per-unit analysis ---------------------------------------------

    def _analyze_unit(
        self,
        module: str,
        unit: ast.FunctionDef | ast.AsyncFunctionDef,
        class_key: str | None,
        func: FunctionInfo,
    ) -> list[CallSite]:
        local = _LocalTypes(self.index, module, unit)
        awaited: set[int] = set()
        for node in body_nodes(unit):
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                awaited.add(id(node.value))
        sites: list[CallSite] = []
        for node in body_nodes(unit):
            if isinstance(node, ast.Call):
                sites.append(
                    self._classify_call(module, node, class_key, local, id(node) in awaited)
                )
        sites.sort(key=lambda s: (s.lineno, s.col))
        return sites

    def _classify_call(
        self,
        module: str,
        node: ast.Call,
        class_key: str | None,
        local: _LocalTypes,
        is_await: bool,
    ) -> CallSite:
        func = node.func
        dotted = _dotted_name(func)
        canonical = self._canonical_target(module, dotted, class_key, local)
        callee = canonical if canonical in self.index.functions else None
        if callee is None and canonical in self.index.classes:
            callee = self.index.constructor_of(canonical)

        role = "plain"
        indirect: list[str] = []
        shipped: list[ast.expr] = []
        primitive = self._primitive_for(module, node, dotted, canonical, local)

        if self._is_pool_fanout(module, func, local):
            role = "fanout"
            if node.args:
                target = self._callback_target(module, node.args[0], class_key, local)
                if target is not None:
                    indirect.append(target)
                shipped.extend(node.args[1:])
                shipped.extend(kw.value for kw in node.keywords if kw.arg is not None)
        elif canonical == POOL_CONSTRUCTOR or canonical in _MP_POOL_CONSTRUCTORS:
            role = "pool_ctor"
            for kw in node.keywords:
                if kw.arg == "initializer":
                    target = self._callback_target(module, kw.value, class_key, local)
                    if target is not None:
                        indirect.append(target)
                elif kw.arg == "initargs":
                    shipped.append(kw.value)
        elif isinstance(func, ast.Attribute) and func.attr == "run_in_executor":
            role = "executor"
            if len(node.args) >= 2:
                target = self._callback_target(module, node.args[1], class_key, local)
                if target is not None:
                    indirect.append(target)
                shipped.extend(node.args[2:])
                if isinstance(node.args[1], ast.Call):
                    # Inline partial(fn, a, b): the bound args ship too.
                    shipped.extend(node.args[1].args[1:])
        elif canonical == "asyncio.to_thread":
            role = "executor"
            if node.args:
                target = self._callback_target(module, node.args[0], class_key, local)
                if target is not None:
                    indirect.append(target)
                shipped.extend(node.args[1:])

        return CallSite(
            node=node,
            canonical=canonical,
            callee=callee,
            role=role,
            is_await=is_await,
            indirect=tuple(indirect),
            shipped=tuple(shipped),
            primitive=primitive,
        )

    def _canonical_target(
        self,
        module: str,
        dotted: tuple[str, ...] | None,
        class_key: str | None,
        local: _LocalTypes,
    ) -> str | None:
        if dotted is None:
            return None
        head = dotted[0]
        if head in ("self", "cls") and class_key is not None and len(dotted) == 2:
            return self.index.resolve_method(class_key, dotted[1])
        if head in local.instance_of and len(dotted) == 2:
            return self.index.resolve_method(local.instance_of[head], dotted[1])
        if head in local.partials and len(dotted) == 1:
            return local.partials[head]
        if head in local.assigned:
            return None  # a local shadows any module-level binding
        return self.index.resolve(module, dotted)

    def _callback_target(
        self,
        module: str,
        expr: ast.expr,
        class_key: str | None,
        local: _LocalTypes,
    ) -> str | None:
        """Resolve a function reference passed as a value (not called)."""
        if isinstance(expr, ast.Call):
            dotted = _dotted_name(expr.func)
            if dotted is not None and dotted[-1] == "partial" and expr.args:
                return self._callback_target(module, expr.args[0], class_key, local)
            return None
        dotted = _dotted_name(expr)
        if dotted is None:
            return None
        return self._canonical_target(module, dotted, class_key, local)

    def _is_pool_fanout(self, module: str, func: ast.expr, local: _LocalTypes) -> bool:
        if not (isinstance(func, ast.Attribute) and func.attr in POOL_MAP_METHODS):
            return False
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id in local.pools:
            return True
        if isinstance(receiver, ast.Call):
            inner = _dotted_name(receiver.func)
            if inner is not None:
                resolved = self.index.resolve(module, inner)
                if resolved == POOL_CONSTRUCTOR or resolved in _MP_POOL_CONSTRUCTORS:
                    return True
                if resolved is None and inner[-1] == "pool" and len(inner) <= 2:
                    return True  # repolint's syntactic fallback
        return False

    def _primitive_for(
        self,
        module: str,
        node: ast.Call,
        dotted: tuple[str, ...] | None,
        canonical: str | None,
        local: _LocalTypes,
    ) -> PrimitiveOp | None:
        desc: str | None = None
        if canonical == "time.sleep":
            desc = "`time.sleep()`"
        elif canonical is not None and canonical.startswith("numpy.") and (
            canonical.rsplit(".", 1)[-1] in _NP_FILE_IO
        ):
            desc = f"file I/O `np.{canonical.rsplit('.', 1)[-1]}()`"
        elif canonical == POOL_CONSTRUCTOR or canonical in _MP_POOL_CONSTRUCTORS:
            desc = "worker-pool construction"
        elif (
            dotted is not None
            and len(dotted) == 1
            and dotted[0] == "open"
            and "open" not in local.assigned
            and canonical is None
        ):
            desc = "`open()`"
        elif isinstance(node.func, ast.Attribute) and node.func.attr in _PATH_IO_METHODS:
            desc = f"file I/O `.{node.func.attr}()`"
        elif self._is_pool_fanout(module, node.func, local):
            desc = f"worker-pool `.{node.func.attr}()` fan-out"  # type: ignore[union-attr]
        if desc is None:
            return None
        return PrimitiveOp(desc=desc, lineno=node.lineno, col=node.col_offset + 1)
