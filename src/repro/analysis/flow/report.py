"""Output formats and the grandfather baseline for the flow analyzer.

Three renderings of the same finding list:

* **text** — repolint's ``path:line:col: RULE message`` lines;
* **json** — ``{"files_checked", "findings", "baselined"}``;
* **sarif** — minimal SARIF 2.1.0 for code-scanning upload.

The baseline file holds *fingerprints* of grandfathered findings so a
gating CI job can adopt the analyzer before every historical finding is
fixed.  A fingerprint is ``sha1(rule|path|message)`` — deliberately
line-free, so unrelated edits shifting a finding up or down do not break
the match (rule messages therefore never embed line numbers).  The
repo's committed baseline is empty: every true finding was fixed and
every intentional one carries an inline suppression.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Sequence

from ..lint import Finding

__all__ = [
    "fingerprint",
    "load_baseline",
    "render_json",
    "render_sarif",
    "split_baselined",
    "write_baseline",
]

BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable identity for one finding: ``sha1(rule|path|message)``."""
    raw = f"{finding.rule}|{finding.path}|{finding.message}"
    return hashlib.sha1(raw.encode("utf-8")).hexdigest()


def load_baseline(path: str | Path) -> frozenset[str]:
    """Fingerprints grandfathered by ``path``; empty when absent."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return frozenset()
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "fingerprints" not in payload:
        raise ValueError(f"malformed baseline file: {baseline_path}")
    return frozenset(str(item) for item in payload["fingerprints"])


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    """Grandfather every finding in ``findings`` into the baseline file."""
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted({fingerprint(finding) for finding in findings}),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_baselined(
    findings: Sequence[Finding], baseline: frozenset[str]
) -> tuple[list[Finding], list[Finding]]:
    """``(new, grandfathered)`` partition of ``findings`` against ``baseline``."""
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        (grandfathered if fingerprint(finding) in baseline else new).append(finding)
    return new, grandfathered


def render_json(
    findings: Sequence[Finding], baselined: Sequence[Finding], files_checked: int
) -> str:
    return json.dumps(
        {
            "files_checked": files_checked,
            "findings": [finding.as_dict() for finding in findings],
            "baselined": [finding.as_dict() for finding in baselined],
        },
        indent=2,
    )


def render_sarif(
    findings: Sequence[Finding], rules: dict[str, str], tool_name: str = "repro-flow"
) -> str:
    """Minimal SARIF 2.1.0 document for ``findings``."""
    rule_ids = sorted({finding.rule for finding in findings} | set(rules))
    sarif = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://example.invalid/repro",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": rules.get(rule_id, rule_id)
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": finding.rule,
                        "level": "error",
                        "message": {"text": finding.message},
                        "partialFingerprints": {"reproFlow/v1": fingerprint(finding)},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {"uri": finding.path},
                                    "region": {
                                        "startLine": finding.line,
                                        "startColumn": finding.col,
                                    },
                                }
                            }
                        ],
                    }
                    for finding in findings
                ],
            }
        ],
    }
    return json.dumps(sarif, indent=2)
