"""Interprocedural dataflow analysis over the ``repro`` package.

``repro.analysis.flow`` complements repolint's per-line rules
(RPR001–RPR009) with whole-program passes over a module-level call
graph (:mod:`.callgraph`):

======  ==============================================================
RPR010  ``async def`` under ``repro/serve/`` transitively reaches a
        blocking call (sleep / file I/O / pool fan-out) — repolint's
        RPR009 stays as the direct-call fast path.
RPR011  one ``np.random.Generator`` reaches two parallel-work sites
        without an intervening ``spawn()``, or is used again after
        being shipped to a worker.
RPR012  a ``SharedNDArray`` / ``SharedMemory`` creation is not closed
        (owners: unlinked) on every exit path, including exceptions.
RPR013  a blocked kernel loop steps by an ad-hoc size instead of the
        shared reduction grid.
======  ==============================================================

Run it with ``python -m repro.analysis.flow src`` (``--json``,
``--format sarif``, ``--baseline``).  Inline suppressions share
repolint's ``# repolint: disable=RPRnnn`` syntax; unknown codes are
RPR000 errors.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from ..lint import Finding
from ..suppress import extract_suppressions
from .blocking import check_blocking
from .callgraph import CallGraph, ModuleIndex
from .grid import check_grid
from .lifecycle import check_lifecycle
from .rng import check_rng

__all__ = ["RULES", "analyze_index", "analyze_paths", "analyze_sources"]

RULES: dict[str, str] = {
    "RPR010": "serve/ async handler transitively reaches a blocking call",
    "RPR011": "one np.random.Generator reaches two parallel-work sites without spawn()",
    "RPR012": "SharedNDArray/SharedMemory not closed (owner: unlinked) on every exit path",
    "RPR013": "blocked kernel loop uses an ad-hoc block size instead of the reduction grid",
}


def analyze_index(index: ModuleIndex) -> list[Finding]:
    """All flow findings for a built index, suppressions applied."""
    graph = CallGraph(index)
    findings: list[Finding] = []
    findings.extend(check_blocking(graph))
    findings.extend(check_rng(graph))
    findings.extend(check_lifecycle(graph))
    findings.extend(check_grid(graph))
    findings.extend(
        Finding(path=path, line=line, col=1, rule="RPR000", message=message)
        for path, line, message in index.errors
    )
    by_path: dict[str, list[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    kept: list[Finding] = []
    trees = {path: tree for path, _module, tree in index.files}
    for path, source in index.sources.items():
        suppressions = extract_suppressions(source, trees.get(path))
        kept.extend(
            finding
            for finding in by_path.get(path, [])
            if finding.rule not in suppressions.active(finding.line)
        )
        kept.extend(
            Finding(
                path=path,
                line=line,
                col=1,
                rule="RPR000",
                message=f"unknown rule code {code!r} in repolint suppression",
            )
            for line, code in suppressions.errors
        )
    # Findings in files the index failed to parse (no source entry).
    kept.extend(
        finding for finding in findings if finding.path not in index.sources
    )
    return sorted(kept, key=lambda f: (f.path, f.line, f.col, f.rule))


def analyze_paths(paths: Sequence[str | Path]) -> tuple[list[Finding], int]:
    """Analyze files/directories; returns ``(findings, files_indexed)``."""
    index = ModuleIndex.build(paths)
    return analyze_index(index), len(index.files) + len(index.errors)


def analyze_sources(sources: dict[str, str]) -> list[Finding]:
    """Analyze in-memory ``{path: source}`` (test and fixture entry point)."""
    return analyze_index(ModuleIndex.from_sources(sources))
