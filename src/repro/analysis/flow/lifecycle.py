"""RPR012 — shared-memory lifecycle: close (and owner-unlink) on all exits.

Every ``SharedNDArray`` / ``multiprocessing.shared_memory.SharedMemory``
creation must be released on every exit path, including exceptional
ones — a leaked owner segment outlives the process and silently eats
``/dev/shm``.  The pass runs a statement-ordered abstract interpretation
per function with just enough path sensitivity for the repo's idioms:

* ``with``-managed creations are clean (the context manager closes);
* a creation assigned *directly* into an attribute, subscript, or a
  returned expression escapes immediately — ownership moved to a
  longer-lived holder (worker caches, ``self``, the caller);
* ``x.close()`` / ``x.unlink()`` resolve; ``SharedNDArray.close()``
  owner-unlinks internally, raw ``SharedMemory`` owners need both;
* inside ``try``, a ``finally`` or ``except`` block that closes the
  resource protects the body;
* ``if``/``else`` fork the state and merge pessimistically (closed only
  if closed on both arms);
* a call that may raise while a resource is open and unprotected is an
  exception-path leak; a path reaching ``return`` or the function's end
  with the resource open is an all-exits leak.

Functions that return a tracked resource (alone or in a tuple) become
*creators*: their callers inherit a creation site at the call, with
tuple-unpack position mapping — so ``instance, shared =
attach_instance(p)`` is tracked in the caller too.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Sequence

from ..lint import Finding
from .callgraph import CallGraph, FunctionInfo, body_nodes, repro_subpackage

__all__ = ["check_lifecycle"]

#: kind -> (human description, owner side must unlink the raw segment)
_KINDS = {
    "ndarray-owner": ("owner `SharedNDArray`", False),
    "ndarray-attach": ("attached `SharedNDArray`", False),
    "shm-owner": ("owner `SharedMemory` segment", True),
    "shm-attach": ("attached `SharedMemory` segment", False),
}

_CLOSERS = frozenset({"close", "unlink"})


def _dotted(node: ast.expr) -> tuple[str, ...] | None:
    names: list[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
        return tuple(reversed(names))
    return None


@dataclasses.dataclass
class _Resource:
    ident: int
    kind: str
    name: str  #: first binding name (or the producing call text)
    lineno: int
    col: int
    closed: bool = False
    unlinked: bool = False
    escaped: bool = False
    protected: bool = False
    flagged_exception: bool = False
    flagged_exit: bool = False

    @property
    def resolved(self) -> bool:
        if self.escaped:
            return True
        if not self.closed:
            return False
        return self.unlinked or not _KINDS[self.kind][1]

    def snapshot(self) -> tuple[bool, bool, bool, bool]:
        return (self.closed, self.unlinked, self.escaped, self.protected)

    def restore(self, snap: tuple[bool, bool, bool, bool]) -> None:
        self.closed, self.unlinked, self.escaped, self.protected = snap


@dataclasses.dataclass(frozen=True)
class _Creator:
    """A function whose return value carries a fresh resource."""

    kind: str
    position: int | None  #: index in the returned tuple, None = the value itself


class _LifecycleScanner:
    """One function's interpretation; findings accumulate in ``findings``."""

    def __init__(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        creators: dict[str, _Creator],
    ) -> None:
        self.graph = graph
        self.info = info
        self.creators = creators
        self.resources: list[_Resource] = []
        self.env: dict[str, int] = {}  #: name -> resource ident
        self.findings: list[Finding] = []
        self.returns_resource: _Creator | None = None

    # -- creation detection ---------------------------------------------

    def _creation_kind(self, call: ast.Call) -> str | None:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        canonical = self.graph.index.resolve(self.info.module, dotted)
        name = canonical if canonical is not None else ".".join(dotted)
        if name.endswith("SharedNDArray.create"):
            return "ndarray-owner"
        if name.endswith("SharedNDArray.attach"):
            return "ndarray-attach"
        if name.endswith("shared_memory.SharedMemory") or name == "SharedMemory":
            creates = any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in call.keywords
            )
            return "shm-owner" if creates else "shm-attach"
        return None

    def _creator_for(self, call: ast.Call) -> _Creator | None:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        canonical = self.graph.index.resolve(self.info.module, dotted)
        if canonical is None:
            return None
        return self.creators.get(canonical)

    def _new_resource(self, kind: str, name: str, node: ast.expr) -> int:
        ident = len(self.resources)
        self.resources.append(
            _Resource(
                ident=ident,
                kind=kind,
                name=name,
                lineno=node.lineno,
                col=node.col_offset + 1,
            )
        )
        return ident

    # -- entry ------------------------------------------------------------

    def run(self) -> list[Finding]:
        self._exec_block(self.info.node.body)
        for resource in self.resources:
            self._check_exit(resource, implicit=True)
            desc, needs_unlink = _KINDS[resource.kind]
            if (
                needs_unlink
                and resource.closed
                and not resource.unlinked
                and not resource.escaped
            ):
                self.findings.append(
                    Finding(
                        path=self.info.path,
                        line=resource.lineno,
                        col=resource.col,
                        rule="RPR012",
                        message=(
                            f"{desc} `{resource.name}` in `{self.info.qualname}` "
                            "is closed but its owner never unlinks it"
                        ),
                    )
                )
        return self.findings

    # -- statement interpretation -----------------------------------------

    def _exec_block(self, body: Sequence[ast.stmt]) -> bool:
        """Interpret ``body``; True when it terminates (return/raise)."""
        for stmt in body:
            if self._exec_stmt(stmt):
                return True
        return False

    def _exec_stmt(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return False
        if isinstance(stmt, ast.If):
            snaps = [r.snapshot() for r in self.resources]
            done_body = self._exec_block(stmt.body)
            after_body = [r.snapshot() for r in self.resources]
            for resource, snap in zip(self.resources, snaps):
                resource.restore(snap)
            done_else = self._exec_block(stmt.orelse)
            if done_body and not done_else:
                return False  # fall-through keeps the else-arm state
            if done_else and not done_body:
                for resource, snap in zip(self.resources, after_body):
                    resource.restore(snap)
                return False
            if done_body and done_else:
                return True
            for resource, snap in zip(self.resources, after_body):
                closed_b, unlinked_b, escaped_b, _ = snap
                resource.closed = resource.closed and closed_b
                resource.unlinked = resource.unlinked and unlinked_b
                resource.escaped = resource.escaped or escaped_b
            return False
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            self._may_raise(stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
            return False
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_with(stmt)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt)
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt.targets, stmt.value)
            return False
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._exec_assign([stmt.target], stmt.value)
            return False
        if isinstance(stmt, ast.Return):
            return self._exec_return(stmt)
        if isinstance(stmt, ast.Raise):
            for resource in self._live():
                self._flag_exception(resource, "an exception is raised")
            return True
        if isinstance(stmt, ast.Expr):
            self._exec_expr_stmt(stmt.value)
            return False
        self._may_raise(stmt)
        return False

    def _exec_with(self, stmt: ast.With | ast.AsyncWith) -> bool:
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call) and self._creation_kind(expr) is not None:
                continue  # managed: the context manager closes it
            self._may_raise(expr)
        return self._exec_block(stmt.body)

    def _exec_try(self, stmt: ast.Try) -> bool:
        protected_names = self._closing_names(stmt.handlers, stmt.finalbody)
        saved: dict[int, bool] = {}
        for name, ident in self.env.items():
            if name in protected_names:
                saved[ident] = self.resources[ident].protected
                self.resources[ident].protected = True
        done = self._exec_block(stmt.body)
        for ident, prev in saved.items():
            self.resources[ident].protected = prev
        for handler in stmt.handlers:
            snaps = [r.snapshot() for r in self.resources]
            self._exec_block(handler.body)
            for resource, snap in zip(self.resources, snaps):
                # Handler effects are possible, not guaranteed; keep only
                # escapes (a handler cannot un-close on the main path).
                escaped = resource.escaped
                resource.restore(snap)
                resource.escaped = resource.escaped or escaped
        if stmt.orelse and not done:
            done = self._exec_block(stmt.orelse)
        if stmt.finalbody:
            final_done = self._exec_block(stmt.finalbody)
            done = done or final_done
        return done

    @staticmethod
    def _closing_names(
        handlers: Sequence[ast.ExceptHandler], finalbody: Sequence[ast.stmt]
    ) -> set[str]:
        names: set[str] = set()
        nodes: list[ast.stmt] = list(finalbody)
        for handler in handlers:
            nodes.extend(handler.body)
        for stmt in nodes:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CLOSERS
                    and isinstance(node.func.value, ast.Name)
                ):
                    names.add(node.func.value.id)
        return names

    # -- assignments, returns, expression statements ----------------------

    def _exec_assign(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        self._may_raise(value, skip_root_creation=True)
        ident: int | None = None
        if isinstance(value, ast.Call):
            kind = self._creation_kind(value)
            creator = self._creator_for(value) if kind is None else None
            if kind is not None:
                ident = self._new_resource(kind, self._target_name(targets), value)
            elif creator is not None:
                ident = self._new_resource(creator.kind, self._target_name(targets), value)
                return self._bind_creator(targets, ident, creator)
        if ident is None:
            self._rebind(targets, value)
            return
        target = targets[0] if len(targets) == 1 else None
        if isinstance(target, ast.Name):
            self.env[target.id] = ident
        else:
            # Direct store into an attribute/subscript: ownership moves to
            # the longer-lived holder (worker cache, self) — an escape.
            self.resources[ident].escaped = True

    def _bind_creator(
        self, targets: Sequence[ast.expr], ident: int, creator: _Creator
    ) -> None:
        target = targets[0] if len(targets) == 1 else None
        if (
            creator.position is not None
            and isinstance(target, (ast.Tuple, ast.List))
            and creator.position < len(target.elts)
            and isinstance(target.elts[creator.position], ast.Name)
        ):
            element = target.elts[creator.position]
            assert isinstance(element, ast.Name)
            self.env[element.id] = ident
        elif isinstance(target, ast.Name):
            self.env[target.id] = ident
        else:
            self.resources[ident].escaped = True

    def _target_name(self, targets: Sequence[ast.expr]) -> str:
        target = targets[0] if targets else None
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, (ast.Tuple, ast.List)):
            names = [e.id for e in target.elts if isinstance(e, ast.Name)]
            if names:
                return names[-1]
        return "<anonymous>"

    def _rebind(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        source = self.env.get(value.id) if isinstance(value, ast.Name) else None
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                if source is not None:
                    # Stored into a longer-lived holder (worker cache,
                    # ``self``): ownership moved with it.
                    self.resources[source].escaped = True
                continue
            if not isinstance(target, ast.Name):
                continue
            if source is not None:
                self.env[target.id] = source
            else:
                self.env.pop(target.id, None)

    def _exec_return(self, stmt: ast.Return) -> bool:
        value = stmt.value
        if value is not None:
            self._may_raise(value, skip_root_creation=True)
            returned = self._returned_resources(value)
            for ident, position in returned:
                self.resources[ident].escaped = True
                if self.returns_resource is None:
                    self.returns_resource = _Creator(
                        kind=self.resources[ident].kind, position=position
                    )
        for resource in self._live():
            self._flag_exit(resource)
        return True

    def _returned_resources(self, value: ast.expr) -> list[tuple[int, int | None]]:
        """(resource ident, tuple position) pairs escaping via this return."""
        out: list[tuple[int, int | None]] = []
        elements: list[tuple[ast.expr, int | None]]
        if isinstance(value, (ast.Tuple, ast.List)):
            elements = [(element, i) for i, element in enumerate(value.elts)]
        else:
            elements = [(value, None)]
        for expr, position in elements:
            if isinstance(expr, ast.Name) and expr.id in self.env:
                out.append((self.env[expr.id], position))
            elif isinstance(expr, ast.Call) and (
                self._creation_kind(expr) is not None or self._creator_for(expr) is not None
            ):
                kind = self._creation_kind(expr)
                creator = self._creator_for(expr)
                resolved = kind if kind is not None else creator.kind  # type: ignore[union-attr]
                ident = self._new_resource(resolved, ast.unparse(expr.func), expr)
                out.append((ident, position))
            else:
                # Ownership moves into whatever the returned expression
                # builds (e.g. ``return cls(shm, ...)``): on the success
                # path the resource escaped with the result.
                for node in ast.walk(expr):
                    if isinstance(node, ast.Name) and node.id in self.env:
                        out.append((self.env[node.id], position))
        return out

    def _exec_expr_stmt(self, value: ast.expr) -> None:
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            receiver = value.func.value
            if isinstance(receiver, ast.Name) and receiver.id in self.env:
                resource = self.resources[self.env[receiver.id]]
                if value.func.attr == "close":
                    resource.closed = True
                    if resource.kind.startswith("ndarray"):
                        resource.unlinked = True  # SharedNDArray.close() owner-unlinks
                    return
                if value.func.attr == "unlink":
                    resource.unlinked = True
                    return
        self._may_raise(value)

    # -- leak events -------------------------------------------------------

    def _live(self) -> Iterator[_Resource]:
        for resource in self.resources:
            if not resource.resolved:
                yield resource

    def _may_raise(self, node: ast.AST | None, skip_root_creation: bool = False) -> None:
        """A statement part that can raise while resources are live."""
        if node is None:
            return
        risky = False
        for child in body_nodes(node):  # type: ignore[arg-type]
            if not isinstance(child, ast.Call):
                continue
            if skip_root_creation and child is node:
                continue
            if (
                isinstance(child.func, ast.Attribute)
                and child.func.attr in _CLOSERS
                and isinstance(child.func.value, ast.Name)
                and child.func.value.id in self.env
            ):
                continue
            risky = True
            break
        if not risky:
            return
        for resource in self._live():
            if not resource.protected:
                self._flag_exception(resource, "a call can raise")

    def _flag_exception(self, resource: _Resource, cause: str) -> None:
        if resource.flagged_exception or resource.protected:
            return
        resource.flagged_exception = True
        desc = _KINDS[resource.kind][0]
        self.findings.append(
            Finding(
                path=self.info.path,
                line=resource.lineno,
                col=resource.col,
                rule="RPR012",
                message=(
                    f"{desc} `{resource.name}` in `{self.info.qualname}` may leak: "
                    f"{cause} while it is open with no closing handler"
                ),
            )
        )

    def _flag_exit(self, resource: _Resource, implicit: bool = False) -> None:
        self._check_exit(resource, implicit)

    def _check_exit(self, resource: _Resource, implicit: bool) -> None:
        if resource.resolved or resource.flagged_exit:
            return
        if resource.closed and _KINDS[resource.kind][1] and not resource.unlinked:
            return  # the dedicated unlink message covers this
        resource.flagged_exit = True
        desc = _KINDS[resource.kind][0]
        where = "the end of" if implicit else "a return in"
        self.findings.append(
            Finding(
                path=self.info.path,
                line=resource.lineno,
                col=resource.col,
                rule="RPR012",
                message=(
                    f"{desc} `{resource.name}` in `{self.info.qualname}` is not "
                    f"closed on every exit path (open at {where} the function)"
                ),
            )
        )


def check_lifecycle(graph: CallGraph) -> list[Finding]:
    """RPR012 findings over library functions, with creator propagation."""
    library = [
        info
        for info in graph.index.functions.values()
        if repro_subpackage(info.module) is not None
    ]
    creators: dict[str, _Creator] = {}
    # Fixpoint on the creator set: a creator's callers may themselves
    # return the resource onward.  Findings are taken from the last round.
    findings: list[Finding] = []
    for _ in range(4):
        findings = []
        discovered: dict[str, _Creator] = {}
        for info in library:
            scanner = _LifecycleScanner(graph, info, creators)
            findings.extend(scanner.run())
            if scanner.returns_resource is not None:
                discovered[info.key] = scanner.returns_resource
        if discovered == creators:
            break
        creators = discovered
    return findings
