"""RPR013 — blocked kernel loops must use the shared reduction grid.

Bit-identical results across backends and worker counts depend on every
blocked reduction walking the *same* row grid
(:func:`repro.core.backend.reduction_block_rows`); an ad-hoc block size
in one consumer changes accumulation order and breaks dense-vs-lazy
parity.  This pass flags every explicit-step ``range`` loop whose body
calls a ``row_block``-family kernel unless the step derives from the
grid: a ``reduction_block_rows(...)`` call, a local bound from one, a
``*BLOCK_ROWS`` module constant (or one defined via the grid helper), a
``block_rows`` parameter, or a ``.block_rows``-style attribute.

Loops driven by ``backend.blocks()`` never use an explicit step and are
clean by construction — that iterator is the preferred form.
"""

from __future__ import annotations

import ast

from ..lint import Finding
from .callgraph import CallGraph, FunctionInfo, body_nodes, repro_subpackage

__all__ = ["check_grid"]

#: Subpackages holding blocked kernels; tools/serve/obs are out of scope.
_KERNEL_SUBPACKAGES = frozenset({"core", "algorithms", "stream", "parallel"})

_BLOCK_METHODS = frozenset({"row_block", "gather_block"})

_GRID_HELPER = "reduction_block_rows"


def _step_is_grid_derived(
    graph: CallGraph, info: FunctionInfo, step: ast.expr, grid_locals: set[str]
) -> bool:
    for node in ast.walk(step):
        if isinstance(node, ast.Call):
            dotted = _call_name(node)
            if dotted is not None and dotted.endswith(_GRID_HELPER):
                return True
        elif isinstance(node, ast.Attribute) and node.attr.lower().endswith("block_rows"):
            return True
        elif isinstance(node, ast.Name):
            if node.id in grid_locals:
                return True
            if node.id.lower().endswith("block_rows"):
                return True
            resolved = graph.index.resolve(info.module, (node.id,))
            if resolved is not None and _constant_is_grid(graph, resolved):
                return True
    return False


def _call_name(call: ast.Call) -> str | None:
    names: list[str] = []
    func: ast.expr = call.func
    while isinstance(func, ast.Attribute):
        names.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        names.append(func.id)
        return ".".join(reversed(names))
    return None


def _constant_is_grid(graph: CallGraph, key: str) -> bool:
    short = key.rsplit(".", 1)[-1].lower()
    if short.endswith("block_rows"):
        return True
    value = graph.index.constants.get(key)
    if value is None:
        return False
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            dotted = _call_name(node)
            if dotted is not None and dotted.endswith(_GRID_HELPER):
                return True
    return False


def _grid_locals(graph: CallGraph, info: FunctionInfo) -> set[str]:
    """Local names transitively bound from the grid helper or a grid param."""
    names = {
        arg.arg
        for arg in (
            info.node.args.posonlyargs + info.node.args.args + info.node.args.kwonlyargs
        )
        if arg.arg.lower().endswith("block_rows")
    }
    assigns = [
        (node.targets, node.value)
        for node in body_nodes(info.node)
        if isinstance(node, ast.Assign)
    ]
    # Iterate: ``step = _BLOCK_ROWS`` then ``span = step * 2`` are both
    # grid-derived.  Bounded by the number of assignments.
    changed = True
    while changed:
        changed = False
        for targets, value in assigns:
            if not _step_is_grid_derived(graph, info, value, names):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id not in names:
                    names.add(target.id)
                    changed = True
    return names


def check_grid(graph: CallGraph) -> list[Finding]:
    """RPR013 findings: ad-hoc block sizes in kernel-package range loops."""
    findings: list[Finding] = []
    for info in graph.index.functions.values():
        if repro_subpackage(info.module) not in _KERNEL_SUBPACKAGES:
            continue
        grid_locals = _grid_locals(graph, info)
        for node in body_nodes(info.node):
            if not isinstance(node, ast.For):
                continue
            iterator = node.iter
            if not (
                isinstance(iterator, ast.Call)
                and isinstance(iterator.func, ast.Name)
                and iterator.func.id == "range"
                and len(iterator.args) == 3
            ):
                continue
            calls_kernel = any(
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _BLOCK_METHODS
                for body_stmt in node.body
                for child in ast.walk(body_stmt)
            )
            if not calls_kernel:
                continue
            step = iterator.args[2]
            if _step_is_grid_derived(graph, info, step, grid_locals):
                continue
            findings.append(
                Finding(
                    path=info.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule="RPR013",
                    message=(
                        f"blocked kernel loop in `{info.qualname}` steps by "
                        f"`{ast.unparse(step)}` instead of the shared reduction "
                        "grid; use backend.blocks() or reduction_block_rows()"
                    ),
                )
            )
    return findings
