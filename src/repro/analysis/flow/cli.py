"""Command line for the flow analyzer: ``python -m repro.analysis.flow``.

Exit codes: 0 clean (no non-baselined findings), 1 findings, 2 usage
error, 3 the ``--max-seconds`` wall-clock budget was exceeded (the CI
gate keeps the analyzer cheap enough to run on every push).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Iterable

from . import RULES, analyze_paths
from .report import (
    load_baseline,
    render_json,
    render_sarif,
    split_baselined,
    write_baseline,
)

__all__ = ["main"]

DEFAULT_BASELINE = ".flow-baseline.json"


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.flow",
        description=(
            "Interprocedural dataflow analysis (rules RPR010-RPR013): "
            "transitive blocking calls, RNG provenance, shared-memory "
            "lifecycle, reduction-grid discipline."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to analyze")
    parser.add_argument("--json", action="store_true", help="emit a JSON report on stdout")
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="report format (default: text; --json overrides)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"grandfather-fingerprint file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather every current finding into --baseline and exit 0",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the rendered report to this file (for CI artifacts)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="fail (exit 3) when analysis wall-clock exceeds this budget",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    started = time.monotonic()
    findings, checked = analyze_paths(args.paths)
    elapsed = time.monotonic() - started

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline written: {len(findings)} fingerprint(s) -> {args.baseline}")
        return 0

    try:
        baseline = load_baseline(args.baseline)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    new, grandfathered = split_baselined(findings, baseline)

    if args.json:
        rendered = render_json(new, grandfathered, checked)
    elif args.format == "sarif":
        rendered = render_sarif(new, RULES)
    else:
        lines = [finding.format() for finding in new]
        summary = (
            f"{len(new)} finding(s) ({len(grandfathered)} baselined) "
            f"in {checked} file(s), {elapsed:.2f}s"
        )
        lines.append(summary if new else f"clean: {summary}")
        rendered = "\n".join(lines)
    print(rendered)
    if args.output is not None:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")

    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(
            f"error: analysis took {elapsed:.2f}s > budget {args.max_seconds:.2f}s",
            file=sys.stderr,
        )
        return 3
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
