"""RPR010 — transitive blocking propagation into ``repro/serve/`` handlers.

A function is *blocking* when it directly performs one of the RPR009
primitives (sleep, ``open``, ``Path``/numpy file I/O, pool construction
or fan-out) or when it can reach one through a propagating call edge:

* a plain (or fan-out) call into a **sync** function propagates — the
  callee runs on the caller's thread;
* ``await`` into a blocking **async** function propagates — the
  coroutine blocks the event loop from inside;
* executor hand-off (``run_in_executor`` / ``asyncio.to_thread``) never
  propagates — that is the sanctioned escape hatch, the callback runs
  on a worker thread.

RPR010 flags every ``async def`` under ``repro/serve/`` with a
propagating edge into a blocking function.  Direct primitives inside the
handler itself stay RPR009's territory (the syntactic fast path), so
RPR010 findings always describe a chain of depth ≥ 1 and each message
carries the witness path for the fix.
"""

from __future__ import annotations

import dataclasses

from ..lint import Finding
from .callgraph import CallGraph, CallSite, FunctionInfo, repro_subpackage

__all__ = ["BlockingWitness", "check_blocking", "compute_blocking"]


@dataclasses.dataclass(frozen=True)
class BlockingWitness:
    """Why a function is blocking: a primitive plus the path reaching it."""

    desc: str  #: primitive description, e.g. "``time.sleep()``"
    chain: tuple[str, ...]  #: function keys from the function itself to the holder


def _propagates(site: CallSite, callee: FunctionInfo) -> bool:
    if site.role == "executor":
        return False
    if callee.is_async:
        return site.is_await
    return True


def compute_blocking(graph: CallGraph) -> dict[str, BlockingWitness]:
    """Fixpoint: the blocking witness for every blocking function key."""
    blocking: dict[str, BlockingWitness] = {}
    functions = graph.index.functions
    # Seed with direct primitives.
    for key, sites in graph.sites.items():
        for site in sites:
            if site.primitive is not None:
                blocking[key] = BlockingWitness(desc=site.primitive.desc, chain=(key,))
                break
    # Reverse edges: callee key -> [(caller key, site)].
    callers: dict[str, list[tuple[str, CallSite]]] = {}
    for key, sites in graph.sites.items():
        for site in sites:
            for target in _edge_targets(site):
                callers.setdefault(target, []).append((key, site))
    worklist = list(blocking)
    while worklist:
        callee_key = worklist.pop()
        witness = blocking[callee_key]
        callee = functions.get(callee_key)
        if callee is None:
            continue
        for caller_key, site in callers.get(callee_key, ()):
            if caller_key in blocking:
                continue
            if not _propagates(site, callee):
                continue
            blocking[caller_key] = BlockingWitness(
                desc=witness.desc, chain=(caller_key, *witness.chain)
            )
            worklist.append(caller_key)
    return blocking


def _edge_targets(site: CallSite) -> tuple[str, ...]:
    targets: list[str] = []
    if site.callee is not None:
        targets.append(site.callee)
    if site.role == "fanout":
        targets.extend(site.indirect)
    return tuple(targets)


def _short(key: str) -> str:
    return key.removeprefix("repro.")


def check_blocking(graph: CallGraph) -> list[Finding]:
    """RPR010 findings: serve async handlers reaching blocking code."""
    blocking = compute_blocking(graph)
    findings: list[Finding] = []
    for info in graph.index.functions.values():
        if not info.is_async or repro_subpackage(info.module) != "serve":
            continue
        for site in graph.sites[info.key]:
            if site.primitive is not None:
                continue  # direct primitive: RPR009's syntactic fast path
            for target in _edge_targets(site):
                callee = graph.index.functions.get(target)
                witness = blocking.get(target)
                if callee is None or witness is None or not _propagates(site, callee):
                    continue
                chain = " -> ".join(_short(k) for k in witness.chain)
                findings.append(
                    Finding(
                        path=info.path,
                        line=site.lineno,
                        col=site.col,
                        rule="RPR010",
                        message=(
                            f"async `{info.qualname}` reaches blocking {witness.desc} "
                            f"via {chain}; hand the chain to run_in_executor instead"
                        ),
                    )
                )
                break  # one finding per call site
    return findings
