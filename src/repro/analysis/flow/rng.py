"""RPR011 — RNG provenance: one generator must not feed two workers.

Deterministic parallel runs require that every parallel-work site
receives its *own* ``np.random.Generator`` — children minted with
``rng.spawn()`` before any fan-out — and that a generator handed to a
child is never touched again by the parent (both would then draw the
same stream).  This pass tracks generator values from their origins:

* parameters named ``rng``/``*_rng`` or annotated ``Generator``,
* ``np.random.default_rng(...)`` results,
* ``rng.spawn(k)`` results (a group of independent children),

through local aliases and container displays/comprehensions, to *ship
events*: pool fan-out payloads, pool ``initargs``, executor hand-off
arguments, and calls into functions that (transitively) ship one of
their own parameters — the interprocedural ``ships_params`` fixpoint.

Findings:

* **second ship** — a generator reaches a second parallel-work site with
  no intervening ``spawn()`` (includes the same site re-executed in a
  loop, caught by interpreting loop bodies twice);
* **use after ship** — a generator is used (drawn from, spawned,
  re-passed) after it was shipped to a child.

Soundness caveats: elements of one ``spawn()`` result group are assumed
distinct (indices are not tracked), return-value taint does not
propagate to callers, and branches merge may-shipped states.
"""

from __future__ import annotations

import ast
import dataclasses
import itertools
from typing import Iterator, Sequence

from ..lint import Finding
from .callgraph import CallGraph, CallSite, FunctionInfo, body_nodes, repro_subpackage

__all__ = ["check_rng", "compute_ships_params"]

_FRESH = "fresh"
_SHIPPED = "shipped"


def _dotted(node: ast.expr) -> tuple[str, ...] | None:
    names: list[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
        return tuple(reversed(names))
    return None


def _is_generator_param(arg: ast.arg) -> bool:
    if arg.arg == "rng" or arg.arg.endswith("_rng"):
        return True
    annotation = arg.annotation
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Attribute) and node.attr == "Generator":
            return True
        if isinstance(node, ast.Name) and node.id == "Generator":
            return True
    return False


# -- interprocedural ships_params fixpoint -----------------------------


def _bound_param(
    site: CallSite, callee: FunctionInfo, arg_index: int | None, keyword: str | None
) -> str | None:
    """The callee parameter an argument binds to, or None when unknown."""
    if keyword is not None:
        return keyword if keyword in callee.all_params else None
    if arg_index is None:
        return None
    params = callee.params
    offset = 0
    if (
        callee.class_key is not None
        and params
        and params[0] in ("self", "cls")
        and isinstance(site.node.func, ast.Attribute)
    ):
        offset = 1
    position = arg_index + offset
    return params[position] if position < len(params) else None


def _names_in(expr: ast.expr) -> set[str]:
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def compute_ships_params(graph: CallGraph) -> dict[str, frozenset[str]]:
    """For each function: parameters that flow into a parallel-work site."""
    functions = graph.index.functions
    ships: dict[str, set[str]] = {key: set() for key in functions}
    changed = True
    while changed:
        changed = False
        for key, info in functions.items():
            params = set(info.all_params)
            current = ships[key]
            for site in graph.sites[key]:
                fresh: set[str] = set()
                for expr in site.shipped:
                    fresh |= _names_in(expr) & params
                if site.role == "plain" and site.callee in functions:
                    callee = functions[site.callee]
                    callee_ships = ships[site.callee]
                    for index, arg in enumerate(site.node.args):
                        if isinstance(arg, ast.Name) and arg.id in params:
                            bound = _bound_param(site, callee, index, None)
                            if bound is not None and bound in callee_ships:
                                fresh.add(arg.id)
                    for kw in site.node.keywords:
                        if isinstance(kw.value, ast.Name) and kw.value.id in params:
                            bound = _bound_param(site, callee, None, kw.arg)
                            if bound is not None and bound in callee_ships:
                                fresh.add(kw.value.id)
                if not fresh <= current:
                    current |= fresh
                    changed = True
    return {key: frozenset(value) for key, value in ships.items()}


# -- per-function abstract interpretation ------------------------------


@dataclasses.dataclass
class _Origin:
    ident: int
    label: str  #: the name the generator was first bound to
    group: bool  #: True for spawn() result groups (elements independent)


class _RngScanner:
    """Statement-ordered generator tracking for one function body."""

    def __init__(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        ships_params: dict[str, frozenset[str]],
    ) -> None:
        self.graph = graph
        self.info = info
        self.ships_params = ships_params
        self.counter = itertools.count()
        self.origins: dict[int, _Origin] = {}
        self.state: dict[int, str] = {}
        self.env: dict[str, frozenset[int]] = {}
        self.findings: list[Finding] = []
        self.reported: set[tuple[int, int, str]] = set()
        self.site_by_call: dict[int, CallSite] = {
            id(site.node): site for site in graph.sites[info.key]
        }

    # -- entry ----------------------------------------------------------

    def run(self) -> list[Finding]:
        args = self.info.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if _is_generator_param(arg):
                self.env[arg.arg] = frozenset({self._new_origin(arg.arg, group=False)})
        self._exec_block(self.info.node.body)
        return self.findings

    def _new_origin(self, label: str, group: bool) -> int:
        ident = next(self.counter)
        self.origins[ident] = _Origin(ident=ident, label=label, group=group)
        self.state[ident] = _FRESH
        return ident

    # -- statement interpretation ---------------------------------------

    def _exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested units analyzed on their own
        if isinstance(stmt, ast.If):
            before = dict(self.state)
            self._exec_block(stmt.body)
            after_body = dict(self.state)
            self.state = before
            self._exec_block(stmt.orelse)
            for ident in self.state:
                if after_body.get(ident) == _SHIPPED:
                    self.state[ident] = _SHIPPED  # may-shipped merge
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            header = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
            self._scan_exprs(header)
            # Two passes: a ship inside the body re-executes on the next
            # iteration, so the second pass surfaces loop-carried second
            # ships without unbounded iteration.
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_exprs(item.context_expr)
            self._exec_block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
            return
        if isinstance(stmt, ast.Assign):
            # A bare-name RHS is pure aliasing, not a draw from the
            # generator — judged when the alias itself ships or is used.
            if not isinstance(stmt.value, ast.Name):
                self._scan_exprs(stmt)
            self._assign(stmt.targets, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            self._scan_exprs(stmt)
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value)
            return
        self._scan_exprs(stmt)

    def _assign(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        origins = self._value_origins(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if origins:
                    self.env[target.id] = origins
                else:
                    self.env.pop(target.id, None)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        if origins:
                            self.env[element.id] = origins
                        else:
                            self.env.pop(element.id, None)

    def _value_origins(self, value: ast.expr) -> frozenset[int]:
        """Origins a binding to ``value`` should carry (creations included)."""
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None and dotted[-1] == "default_rng":
                return frozenset({self._new_origin("default_rng()", group=False)})
            if dotted is not None and dotted[-1] == "spawn":
                return frozenset({self._new_origin(f"{dotted[0]}.spawn()", group=True)})
        return self._origins_of(value)

    def _origins_of(self, expr: ast.expr) -> frozenset[int]:
        """Origins referenced inside ``expr`` (containers and aliases).

        Does not descend into nested calls: a call *result* does not
        carry its arguments' taint (return-value taint is a documented
        caveat), so ``specs = _method_specs(methods, params, rng)`` does
        not alias ``specs`` to ``rng``.
        """
        found: set[int] = set()
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Call):
                continue
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                found |= self.env.get(node.id, frozenset())
            stack.extend(ast.iter_child_nodes(node))
        return frozenset(found)

    # -- ship and use events --------------------------------------------

    def _scan_exprs(self, stmt: ast.stmt | ast.expr) -> None:
        """Process ship events then residual uses inside one statement."""
        shipping_names: set[str] = set()
        calls = [
            node
            for node in body_nodes(stmt)  # type: ignore[arg-type]
            if isinstance(node, ast.Call)
        ]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        for call in calls:
            shipping_names |= self._handle_call(call)
        # Residual uses: drawing from / spawning / re-passing a name whose
        # origin was already shipped.  Names consumed by a ship event this
        # statement were judged by the ship handler already.
        for node in body_nodes(stmt):  # type: ignore[arg-type]
            if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
                continue
            if node.id in shipping_names:
                continue
            for ident in self.env.get(node.id, frozenset()):
                origin = self.origins[ident]
                if not origin.group and self.state.get(ident) == _SHIPPED:
                    self._report(
                        node.lineno,
                        node.col_offset + 1,
                        f"use:{ident}",
                        f"generator `{origin.label}` used in `{self.info.qualname}` "
                        "after being shipped to a worker; draw from a retained "
                        "spawn() child instead",
                    )
        # spawn() is itself a use of its receiver.
        for call in calls:
            dotted = _dotted(call.func)
            if dotted is not None and dotted[-1] == "spawn" and len(dotted) == 2:
                for ident in self.env.get(dotted[0], frozenset()):
                    origin = self.origins[ident]
                    if not origin.group and self.state.get(ident) == _SHIPPED:
                        self._report(
                            call.lineno,
                            call.col_offset + 1,
                            f"use:{ident}",
                            f"generator `{origin.label}` spawned from in "
                            f"`{self.info.qualname}` after being shipped to a worker",
                        )

    def _handle_call(self, call: ast.Call) -> set[str]:
        """Apply ship events for one call; returns names that shipped."""
        site = self.site_by_call.get(id(call))
        if site is None:
            return set()
        shipped_exprs: list[ast.expr] = list(site.shipped)
        if site.role == "plain" and site.callee in self.graph.index.functions:
            callee = self.graph.index.functions[site.callee]
            callee_ships = self.ships_params.get(site.callee, frozenset())
            for index, arg in enumerate(site.node.args):
                bound = _bound_param(site, callee, index, None)
                if bound is not None and bound in callee_ships:
                    shipped_exprs.append(arg)
            for kw in site.node.keywords:
                bound = _bound_param(site, callee, None, kw.arg)
                if bound is not None and bound in callee_ships:
                    shipped_exprs.append(kw.value)
        if not shipped_exprs:
            return set()
        names: set[str] = set()
        for expr in shipped_exprs:
            names |= _names_in(expr)
            for ident in self._origins_of(expr):
                origin = self.origins[ident]
                if origin.group:
                    continue  # spawn() children are independent by construction
                if self.state.get(ident) == _SHIPPED:
                    self._report(
                        call.lineno,
                        call.col_offset + 1,
                        f"ship:{ident}",
                        f"generator `{origin.label}` in `{self.info.qualname}` "
                        "reaches a second parallel-work site without an "
                        "intervening spawn()",
                    )
                else:
                    self.state[ident] = _SHIPPED
        return names

    def _report(self, line: int, col: int, dedupe: str, message: str) -> None:
        key = (line, col, dedupe)
        if key in self.reported:
            return
        self.reported.add(key)
        self.findings.append(
            Finding(path=self.info.path, line=line, col=col, rule="RPR011", message=message)
        )


def _library_functions(graph: CallGraph) -> Iterator[FunctionInfo]:
    for info in graph.index.functions.values():
        if repro_subpackage(info.module) is not None:
            yield info


def check_rng(graph: CallGraph) -> list[Finding]:
    """RPR011 findings over every library function in the graph."""
    ships_params = compute_ships_params(graph)
    findings: list[Finding] = []
    for info in _library_functions(graph):
        findings.extend(_RngScanner(graph, info, ships_params).run())
    return findings
