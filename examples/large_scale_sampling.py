"""Scaling to large datasets with SAMPLING (paper §4.1, Figure 5 right).

The base algorithms need the full n x n distance matrix — hopeless at
100K+ objects.  SAMPLING clusters a ~1000-object uniform sample, then
assigns everything else with count tables in linear time, never
materializing the matrix.

Run:  python examples/large_scale_sampling.py [n_points]
"""

import sys
import time

from repro.algorithms import agglomerative, sampling
from repro.cluster import kmeans
from repro.core.labels import as_label_matrix
from repro.datasets import gaussian_with_noise
from repro.metrics import adjusted_rand_index, cluster_size_summary


def main(total_points: int = 100_000) -> None:
    data = gaussian_with_noise(
        5, points_per_cluster=total_points // 6, noise_fraction=0.2, rng=0
    )
    print(f"dataset: {data.n:,} points, 5 Gaussian clusters + 20% uniform noise")

    print("building 9 input clusterings (k-means, k = 2..10)...")
    start = time.perf_counter()
    labels = [
        kmeans(data.points, k, n_init=2, max_iter=50, rng=k).labels for k in range(2, 11)
    ]
    matrix = as_label_matrix(labels)
    print(f"  {time.perf_counter() - start:.1f}s")

    print("aggregating with SAMPLING (sample = 1000, inner = AGGLOMERATIVE)...")
    start = time.perf_counter()
    consensus = sampling(matrix, agglomerative, sample_size=1000, rng=0)
    elapsed = time.perf_counter() - start
    print(f"  {elapsed:.2f}s — linear in n; the n x n matrix would hold "
          f"{data.n * data.n / 1e9:.1f}B entries")

    signal = data.truth >= 0
    ari = adjusted_rand_index(consensus.labels[signal], data.truth[signal])
    summary = cluster_size_summary(consensus)
    print(
        f"\nconsensus: {consensus.k} clusters "
        f"({summary['largest']:,} largest, {summary['singletons']} singletons)"
    )
    print(f"agreement with the 5 planted clusters (noise excluded): ARI = {ari:.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100_000)
