"""Improving clustering robustness by aggregation (the paper's Figure 3).

Five standard clustering algorithms — single, complete and average
linkage, Ward, and k-means, all told k = 7 — are run on a 2-D dataset
with features known to break them (narrow bridges, an elongated cluster,
uneven sizes).  Aggregating the five imperfect clusterings "cancels out"
their mistakes.

Run:  python examples/robustness_2d.py
"""

import numpy as np

from repro import aggregate
from repro.cluster import hierarchical, kmeans
from repro.core.labels import as_label_matrix
from repro.datasets import seven_groups
from repro.metrics import adjusted_rand_index


def main() -> None:
    data = seven_groups(rng=0)
    print(f"dataset: {data.n} points, 7 perceptual groups\n")
    print("ground truth:")
    print(data.ascii_plot(width=72, height=18))

    inputs: dict[str, np.ndarray] = {}
    for method in ("single", "complete", "average", "ward"):
        inputs[method] = hierarchical(data.points, 7, method)
    inputs["k-means"] = kmeans(data.points, 7, rng=0).labels

    print("\nthe five input clusterings (agreement with the truth):")
    for name, labels in inputs.items():
        ari = adjusted_rand_index(labels, data.truth)
        print(f"  {name:10s} ARI = {ari:.3f}")

    matrix = as_label_matrix(list(inputs.values()))
    result = aggregate(matrix, method="agglomerative")
    ari = adjusted_rand_index(result.clustering, data.truth)
    print(f"\naggregated (AGGLOMERATIVE, no k given): k = {result.k}, ARI = {ari:.3f}")
    print("\naggregated clustering:")
    print(data.ascii_plot(result.clustering.labels, width=72, height=18))

    worst = inputs["single"]
    print(
        "\nworst input for contrast (single linkage chains through the bridges):"
    )
    print(data.ascii_plot(worst, width=72, height=18))


if __name__ == "__main__":
    main()
