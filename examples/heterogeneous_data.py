"""Clustering heterogeneous data by vertical partitioning (paper §2).

"Consider the case that there are many numerical attributes whose units
are incomparable (say, Movie.Budget and Movie.Year) and so it does not
make sense to compare numerical vectors directly using an L_p-type
distance ... the data can be partitioned vertically into sets of
homogeneous attributes, obtain a clustering for each of these sets by
applying the appropriate clustering algorithm, and then aggregate."

We build a table with three incomparable attribute groups — 2-D spatial
coordinates, a monetary amount on a wildly different scale, and
categorical attributes — cluster each group with the algorithm that fits
it (k-means / 1-D linkage / LIMBO), and aggregate the three clusterings.

Run:  python examples/heterogeneous_data.py
"""

import numpy as np

from repro import aggregate
from repro.baselines import limbo
from repro.cluster import hierarchical, kmeans
from repro.core.labels import as_label_matrix
from repro.metrics import adjusted_rand_index


def build_table(rng: np.random.Generator, per_group: int = 120):
    """Three latent segments, each visible in every attribute group."""
    n_groups = 3
    truth = np.repeat(np.arange(n_groups), per_group)
    n = truth.size
    # Spatial part: metres, range ~[0, 10].
    centers = np.array([[1.0, 1.0], [8.0, 2.0], [4.0, 9.0]])
    spatial = centers[truth] + rng.normal(0, 0.7, size=(n, 2))
    # Monetary part: dollars, range ~[2e4, 2e5] — incomparable units.
    budgets = np.array([3e4, 9e4, 1.8e5])[truth] * rng.lognormal(0, 0.25, size=n)
    # Categorical part: two attributes loosely tied to the segment.
    categories = np.empty((n, 2), dtype=np.int32)
    for j in range(2):
        modal = rng.permutation(5)[:n_groups]
        noise = rng.integers(0, 5, size=n)
        keep = rng.random(n) < 0.85
        categories[:, j] = np.where(keep, modal[truth], noise)
    order = rng.permutation(n)
    return spatial[order], budgets[order], categories[order], truth[order]


def main() -> None:
    rng = np.random.default_rng(0)
    spatial, budgets, categories, truth = build_table(rng)
    n = truth.size
    print(f"table: {n} rows; attribute groups with incomparable units:")
    print(f"  spatial   range [{spatial.min():.1f}, {spatial.max():.1f}] m")
    print(f"  budget    range [{budgets.min():,.0f}, {budgets.max():,.0f}] $")
    print(f"  category  2 categorical attributes\n")

    # The naive approach: L2 on the concatenated raw columns — the budget
    # column dominates everything.
    naive_features = np.column_stack([spatial, budgets])
    naive = kmeans(naive_features, 3, rng=0).labels
    print(f"naive k-means on raw concatenation: ARI = "
          f"{adjusted_rand_index(naive, truth):.3f}  (budget column dominates)")

    # The paper's way: one clustering per homogeneous group.
    spatial_clusters = kmeans(spatial, 3, rng=0).labels
    budget_clusters = hierarchical(budgets[:, None], 3, method="ward")
    category_clusters = limbo(categories, k=3).labels
    print("\nper-group clusterings:")
    for name, labels in (
        ("spatial (k-means)", spatial_clusters),
        ("budget (ward on 1-D)", budget_clusters),
        ("categorical (LIMBO)", category_clusters),
    ):
        print(f"  {name:22s} ARI = {adjusted_rand_index(labels, truth):.3f}")

    matrix = as_label_matrix([spatial_clusters, budget_clusters, category_clusters])
    result = aggregate(matrix, method="local-search")
    ari = adjusted_rand_index(result.clustering, truth)
    print(f"\naggregated: k = {result.k}, ARI = {ari:.3f}")


if __name__ == "__main__":
    main()
