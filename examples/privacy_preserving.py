"""Privacy-preserving clustering over vertically partitioned data (paper §2).

Three organizations hold different attribute sets about the same
population (a hospital, a bank, a census bureau).  None will share raw
values — but each can cluster its *own* attributes locally and publish
only the resulting cluster labels.  Aggregating the three label vectors
clusters the population as a whole; the only information revealed is
which tuples each site groups together.

Run:  python examples/privacy_preserving.py
"""

import numpy as np

from repro import Clustering, aggregate
from repro.baselines import limbo
from repro.datasets import generate_census
from repro.metrics import adjusted_rand_index, normalized_mutual_information


#: Which attribute columns each site holds (of the 8 census attributes).
SITES = {
    "hospital (demographics)": [5, 6],        # race, sex
    "bank (household)": [2, 4],               # marital-status, relationship
    "census bureau (work)": [0, 1, 3, 7],     # workclass, education, occupation, country
}


def main() -> None:
    population = generate_census(n=4000, rng=0)
    print(f"shared population: {population.n:,} people; attributes split across {len(SITES)} sites\n")

    published: list[Clustering] = []
    for site, columns in SITES.items():
        # Each site clusters its own vertical slice locally (here: LIMBO,
        # any categorical algorithm works) and publishes labels only.
        local_view = population.data[:, columns]
        local_clustering = limbo(local_view, k=12, phi=0.5, max_leaves=128)
        published.append(local_clustering)
        print(f"  {site:28s} publishes {local_clustering.k:3d} cluster labels "
              f"(raw values stay on site)")

    result = aggregate(
        published, method="sampling", inner="agglomerative", sample_size=800, rng=0
    )
    print(f"\nglobal consensus: {result.k} clusters over the whole population")

    # Sanity: the consensus correlates with the hidden social groups far
    # better than any single site's clustering does.
    full_view = aggregate(
        population.label_matrix(), method="sampling", inner="agglomerative",
        sample_size=800, rng=0,
    )
    agreement = adjusted_rand_index(result.clustering, full_view.clustering)
    print(
        f"agreement with clustering the pooled (non-private) data: ARI = {agreement:.3f}"
    )
    for (site, _), local in zip(SITES.items(), published):
        nmi = normalized_mutual_information(local, full_view.clustering)
        print(f"  {site:28s} alone: NMI = {nmi:.3f}")
    nmi = normalized_mutual_information(result.clustering, full_view.clustering)
    print(f"  {'aggregated sites':28s}      NMI = {nmi:.3f}")


if __name__ == "__main__":
    main()
