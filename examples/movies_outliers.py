"""The paper's introductory Movie-database scenario: categorical
clustering with built-in outlier detection (§1, §2).

Every attribute of a movie table (director, actor, actress, genre,
decade) is a clustering; aggregating them groups the movies into
production "scenes" without any distance function or cluster count.  The
paper's outlier intuition — "a horror movie featuring actress
Julia.Roberts and directed by the 'independent' director Lars.vonTrier"
— is a movie whose attributes each belong to a *different* big cluster:
no consensus home exists, so aggregation isolates it.

Run:  python examples/movies_outliers.py
"""

import numpy as np

from repro import aggregate
from repro.datasets import generate_movies
from repro.metrics import classification_error


def main() -> None:
    movies = generate_movies(n=400, n_scenes=6, n_outliers=8, rng=0)
    print(f"movie table: {movies.n} movies x {movies.m} categorical attributes")
    print(f"planted: 6 coherent production scenes + 8 cross-scene chimeras\n")

    result = aggregate(movies.label_matrix(), method="agglomerative")
    sizes = result.clustering.sizes()
    big = np.flatnonzero(sizes >= 20)
    print(f"consensus (no k given): {result.k} clusters, {big.size} of them large")
    print(f"large cluster sizes: {sorted(sizes[big].tolist(), reverse=True)}")
    print(f"classification error vs planted scenes: "
          f"{classification_error(result.clustering, movies.classes) * 100:.1f}%\n")

    # Where did the chimeras go?
    outliers = np.flatnonzero(movies.classes == max(movies.classes))
    small = np.isin(result.clustering.labels, np.flatnonzero(sizes <= 3))
    isolated = int(small[outliers].sum())
    print(f"planted outliers isolated in tiny clusters: {isolated} / {outliers.size}")

    print("\none chimera, attribute by attribute:")
    row = movies.data[outliers[0]]
    for j, attribute in enumerate(movies.attribute_names):
        value = movies.value_names[j][row[j]]
        share = int((movies.data[:, j] == row[j]).sum())
        print(f"  {attribute:9s} = {value:12s} (shared with {share - 1} other movies)")
    print(
        "\nEach value is popular — but with a *different* crowd per attribute,"
        "\nso no cluster wants this movie: it becomes a singleton."
    )


if __name__ == "__main__":
    main()
