"""Quickstart: the paper's running example (Figures 1 and 2), end to end.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Clustering, aggregate, available_methods, clustering_distance
from repro.core import CorrelationInstance, total_disagreement


def main() -> None:
    # The six objects v1..v6 and three input clusterings of Figure 1.
    c1 = Clustering([0, 0, 1, 1, 2, 2])  # {v1,v2} {v3,v4} {v5,v6}
    c2 = Clustering([0, 1, 0, 1, 2, 3])  # {v1,v3} {v2,v4} {v5} {v6}
    c3 = Clustering([0, 1, 0, 1, 2, 2])  # {v1,v3} {v2,v4} {v5,v6}
    inputs = [c1, c2, c3]

    print("Input clusterings disagree with each other:")
    print(f"  d(C1, C2) = {clustering_distance(c1, c2)}")
    print(f"  d(C1, C3) = {clustering_distance(c1, c3)}")
    print(f"  d(C2, C3) = {clustering_distance(c2, c3)}")

    # The correlation-clustering view (Figure 2): X[u, v] is the fraction
    # of clusterings separating u and v.
    instance = CorrelationInstance.from_clusterings(inputs)
    print("\nPairwise disagreement fractions (Figure 2):")
    print(np.round(instance.X, 3))

    # Aggregate with each algorithm.  Nobody is told the number of clusters;
    # the objective settles on three by itself.
    print("\nConsensus clusterings:")
    for method in available_methods():
        result = aggregate(inputs, method=method)
        print(
            f"  {method:14s} k={result.k}  D(C)={result.disagreements:4.1f}  "
            f"labels={result.clustering.labels.tolist()}"
        )

    best = aggregate(inputs, method="exact")
    print(
        f"\nOptimal aggregate: {best.clustering.to_sets()} with "
        f"{best.disagreements:.0f} disagreements (the paper's value: 5)."
    )
    assert total_disagreement(inputs, best.clustering) == 5.0


if __name__ == "__main__":
    main()
