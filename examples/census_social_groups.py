"""Census social groups: the paper's §5.2 cluster inspection, automated.

The paper reports that the smallest of the ~54 Census clusters correspond
to "distinct social groups, for example, male Eskimos occupied with
farming-fishing, married Asian-Pacific islander females, unmarried
executive-manager females with high-education degrees".  We run the same
pipeline (SAMPLING + FURTHEST, no number of clusters given) and let
``repro.metrics.describe_clusters`` produce those descriptions: per
cluster, the attribute values that are prevalent inside and rare outside.

Run:  python examples/census_social_groups.py
"""

from repro import aggregate
from repro.datasets import generate_census
from repro.metrics import classification_error, describe_clusters


def main() -> None:
    census = generate_census(n=8000, rng=0)
    print(f"census: {census.n:,} people x {census.m} categorical attributes\n")

    result = aggregate(
        census.label_matrix(),
        method="sampling",
        inner="furthest",
        sample_size=1500,
        rng=0,
        collapse=True,
        compute_lower_bound=False,
    )
    error = classification_error(result.clustering, census.classes)
    print(
        f"consensus: {result.k} clusters (no k given), salary-class error "
        f"E_C = {error * 100:.1f}%\n"
    )

    profiles = describe_clusters(census, result.clustering, min_size=10)
    print("largest social groups:")
    for profile in profiles[:6]:
        print(f"  {profile.summary()}")
    print("\nsmallest (but non-trivial) social groups — the paper's")
    print("'male Eskimos occupied with farming-fishing' moment:")
    for profile in profiles[-6:]:
        print(f"  {profile.summary()}")


if __name__ == "__main__":
    main()
