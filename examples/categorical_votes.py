"""Clustering categorical data: the Votes workload (paper §2, §5.2).

Every categorical attribute *is* a clustering (one cluster per value), so
a table of 16 yes/no votes is an aggregation problem with 16 input
clusterings — including 288 missing votes, handled by the coin-flip
model.  No distance function over tuples is ever defined, and no number
of clusters is given; the consensus settles on the two parties by itself.

Run:  python examples/categorical_votes.py
"""

from repro import aggregate
from repro.datasets import generate_votes
from repro.metrics import classification_error, confusion_matrix


def main() -> None:
    dataset = generate_votes(rng=0)
    print(
        f"dataset: {dataset.n} congresspersons x {dataset.m} roll calls, "
        f"{dataset.missing_count()} missing votes"
    )
    print(f"classes (evaluation only): {dataset.class_names}\n")

    print(f"{'method':16s} {'k':>3s} {'E_C':>7s} {'E_D (=d(C))':>12s}")
    for method, params in (
        ("best", {}),
        ("agglomerative", {}),
        ("furthest", {}),
        ("balls", {"alpha": 0.4}),
        ("local-search", {}),
    ):
        result = aggregate(dataset.label_matrix(), method=method, **params)
        error = classification_error(result.clustering, dataset.classes)
        print(
            f"{method:16s} {result.k:3d} {error * 100:6.1f}% {result.cost:12,.0f}"
        )

    result = aggregate(dataset.label_matrix(), method="agglomerative")
    table = confusion_matrix(result.clustering, dataset.classes)
    print("\nAGGLOMERATIVE consensus vs party labels:")
    print(f"{'':12s}" + "".join(f"cluster {c:<4d}" for c in range(table.shape[1])))
    for class_index, name in enumerate(dataset.class_names):
        cells = "".join(f"{table[class_index, c]:<12d}" for c in range(table.shape[1]))
        print(f"{name:12s}{cells}")
    print(
        "\nThe two consensus clusters are the parties; the off-diagonal"
        "\nentries are the crossover voters (conservative democrats etc.)."
    )


if __name__ == "__main__":
    main()
