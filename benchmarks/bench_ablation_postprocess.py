"""A2 — ablation: LOCALSEARCH as a post-processing step.

The paper notes LOCALSEARCH "can be used as a clustering algorithm, but
also as a post-processing step, to improve upon an existing solution" and
that it "improves significantly the solutions found by the previous
algorithms".  We run every base algorithm on Votes and report E_D before
and after a LOCALSEARCH polish — the polish must never hurt.
"""

from __future__ import annotations

from repro.algorithms import agglomerative, balls, furthest, local_search
from repro.core.instance import CorrelationInstance
from repro.datasets import generate_votes
from repro.experiments import banner, disagreement_cost, render_table
from repro.metrics import classification_error

from conftest import once

_BASES = (
    ("AGGLOMERATIVE", lambda instance: agglomerative(instance)),
    ("FURTHEST", lambda instance: furthest(instance)),
    ("BALLS(a=0.4)", lambda instance: balls(instance, alpha=0.4)),
    ("BALLS(a=0.25)", lambda instance: balls(instance, alpha=0.25)),
)


def bench_ablation_postprocess(benchmark, report):
    dataset = generate_votes(rng=0)
    instance = CorrelationInstance.from_label_matrix(dataset.label_matrix())

    def run():
        rows = []
        for name, algorithm in _BASES:
            base = algorithm(instance)
            polished = local_search(instance, initial=base)
            rows.append((name, base, polished))
        return rows

    outcomes = once(benchmark, run)

    display = []
    for name, base, polished in outcomes:
        display.append(
            (
                name,
                base.k,
                f"{disagreement_cost(dataset, base):,.0f}",
                polished.k,
                f"{disagreement_cost(dataset, polished):,.0f}",
                f"{classification_error(polished, dataset.classes) * 100:.1f}",
            )
        )
    text = render_table(
        ("base algorithm", "k", "E_D", "k after LS", "E_D after LS", "E_C after LS (%)"),
        display,
        title=banner("A2 — LOCALSEARCH post-processing on Votes"),
    )
    report("ablation_postprocess", text)

    for name, base, polished in outcomes:
        before = instance.cost(base)
        after = instance.cost(polished)
        assert after <= before + 1e-9, f"LOCALSEARCH must never hurt ({name})"
