"""Sharded divide-and-merge vs single-shot SAMPLING: time, memory, quality.

Sharding exists to bound the working set by the largest shard instead of
``n`` while staying inside the documented quality envelope
(:data:`repro.shard.QUALITY_ENVELOPE` of single-shot SAMPLING's
objective).  This bench puts numbers on both claims: for each
configuration — single-shot SAMPLING, and ``method="sharded"`` at 1, 2
and 4 shards — it runs the full aggregation in a **fresh subprocess**
and records wall time, the child's peak RSS (``resource.getrusage``;
a monotone per-process high-water mark, hence the subprocess isolation)
and the consensus objective ``d(C)``.

Runs three ways:

- under pytest-benchmark with the other benches, at quick sizes
  (``pytest benchmarks/bench_shard.py``) — also asserts the envelope;
- standalone for the committed report: ``python benchmarks/bench_shard.py``
  sweeps n = 100000 and emits ``reports/BENCH_shard.json`` +
  ``reports/shard_scaling.txt``;
- CI smoke: ``python benchmarks/bench_shard.py --smoke`` runs n = 20000
  at 2 shards plus the single-shot baseline (honours ``REPRO_JOBS``) and
  fails when the envelope is violated.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

SRC_DIR = Path(__file__).resolve().parent.parent / "src"
if str(SRC_DIR) not in sys.path:
    sys.path.insert(0, str(SRC_DIR))

from repro.experiments import banner, render_table  # noqa: E402

_M = 8
_K = 10
_NOISE = 0.15
_SEED = 7
_SIZES = (100_000,)
_QUICK_SIZES = (3_000,)
_SMOKE_SIZE = 20_000
_SHARD_COUNTS = (1, 2, 4)


def _label_matrix(n: int, seed: int) -> np.ndarray:
    """Planted-cluster inputs (the bench_backend workload, same reasoning)."""
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, _K, size=n)
    matrix = np.repeat(truth[:, None], _M, axis=1)
    flips = rng.random((n, _M)) < _NOISE
    matrix[flips] = rng.integers(0, _K, size=int(flips.sum()))
    return matrix.astype(np.int32)


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (Linux: KiB units)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak * (1 if sys.platform == "darwin" else 1024)


def measure(variant: str, n: int) -> dict:
    """Child-process body: aggregate one way, report cost/time/memory.

    ``variant`` is ``"single"`` (one SAMPLING pass over all n rows) or
    ``"shards=S"``.  Both paths honour ``REPRO_JOBS`` for their worker
    budget, and both use the same root seed — sharded results are
    bit-identical across worker counts by construction, so the numbers
    are comparable run to run.
    """
    from repro.core.aggregate import aggregate
    from repro.core.distance import total_disagreement

    matrix = _label_matrix(n, seed=n)
    start = time.perf_counter()
    if variant == "single":
        result = aggregate(
            matrix, method="sampling", rng=_SEED, compute_lower_bound=False, n_jobs=None
        )
        extra: dict = {}
    else:
        n_shards = int(variant.split("=")[1])
        result = aggregate(
            matrix,
            method="sharded",
            n_shards=n_shards,
            rng=_SEED,
            compute_lower_bound=False,
            n_jobs=None,
        )
        shard = result.params["shard"]
        extra = {
            "n_shards": shard["n_shards"],
            "n_atoms": shard["n_atoms"],
            "merge_method": shard["merge_method"],
        }
    seconds = time.perf_counter() - start
    disagreements = float(total_disagreement(matrix, result.clustering))
    return {
        "variant": variant,
        "n": n,
        "m": _M,
        "k": result.clustering.k,
        "cost": disagreements / _M,
        "seconds": seconds,
        "peak_rss_bytes": _peak_rss_bytes(),
        **extra,
    }


def _measure_in_subprocess(variant: str, n: int) -> dict:
    """Run one configuration in a fresh interpreter for a clean RSS high-water."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, __file__, "--measure", variant, str(n)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if completed.returncode != 0:
        return {
            "variant": variant,
            "n": n,
            "error": completed.stderr.strip().splitlines()[-1] if completed.stderr else "crashed",
        }
    return json.loads(completed.stdout)


def _sweep(sizes: tuple[int, ...], shard_counts: tuple[int, ...]) -> list[dict]:
    results: list[dict] = []
    for n in sizes:
        results.append(_measure_in_subprocess("single", n))
        for shards in shard_counts:
            results.append(_measure_in_subprocess(f"shards={shards}", n))
    return results


def _envelopes(results: list[dict]) -> list[dict]:
    """Sharded-over-single cost and RSS ratios per (n, shards)."""
    singles = {r["n"]: r for r in results if r.get("variant") == "single" and "cost" in r}
    out = []
    for r in results:
        if "cost" not in r or r["variant"] == "single":
            continue
        base = singles.get(r["n"])
        if base is None:
            continue
        out.append(
            {
                "n": r["n"],
                "variant": r["variant"],
                "cost_over_single": r["cost"] / base["cost"] if base["cost"] else 1.0,
                "rss_over_single": r["peak_rss_bytes"] / base["peak_rss_bytes"],
                "seconds_over_single": r["seconds"] / base["seconds"],
            }
        )
    return out


def _render(results: list[dict], envelopes: list[dict]) -> str:
    rows = []
    for r in results:
        if "error" in r:
            rows.append((f"{r['n']:,}", r["variant"], "error", "--", "--", "--"))
        else:
            rows.append(
                (
                    f"{r['n']:,}",
                    r["variant"],
                    f"{r['cost']:,.1f}",
                    f"{r['k']}",
                    f"{r['peak_rss_bytes'] / 2**20:,.0f} MiB",
                    f"{r['seconds']:.2f}",
                )
            )
    text = render_table(
        ("n", "variant", "d(C)", "k", "peak RSS", "wall s"),
        rows,
        title=banner(f"sharded divide-and-merge vs single-shot SAMPLING (m={_M})"),
    )
    if envelopes:
        ratio_rows = [
            (
                f"{e['n']:,}",
                e["variant"],
                f"{e['cost_over_single']:.3f}",
                f"{100.0 * e['rss_over_single']:.1f}%",
                f"{100.0 * e['seconds_over_single']:.1f}%",
            )
            for e in envelopes
        ]
        text += "\n\n" + render_table(
            ("n", "variant", "cost / single", "RSS / single", "time / single"),
            ratio_rows,
        )
    return text


def _check_envelope(envelopes: list[dict]) -> list[str]:
    from repro.shard import QUALITY_ENVELOPE

    return [
        f"{e['variant']} at n={e['n']}: cost ratio {e['cost_over_single']:.3f} "
        f"exceeds the documented envelope {QUALITY_ENVELOPE}"
        for e in envelopes
        if e["cost_over_single"] > QUALITY_ENVELOPE
    ]


def _write_json(payload: dict) -> Path:
    reports = Path(__file__).resolve().parent.parent / "reports"
    reports.mkdir(exist_ok=True)
    path = reports / "BENCH_shard.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_shard(benchmark, report):
    """pytest entry: quick subprocess sweep, envelope asserted."""
    from conftest import once

    results = once(benchmark, lambda: _sweep(_QUICK_SIZES, _SHARD_COUNTS))
    envelopes = _envelopes(results)
    report("shard_scaling_quick", _render(results, envelopes))
    measured = [r for r in results if "cost" in r]
    assert len(measured) == len(results), f"configurations failed: {results}"
    violations = _check_envelope(envelopes)
    assert not violations, "; ".join(violations)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--measure",
        nargs=2,
        metavar=("VARIANT", "N"),
        help="internal: measure one configuration and print JSON",
    )
    parser.add_argument("--quick", action="store_true", help="small sizes for local sanity runs")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: n=20000 at 2 shards plus the single-shot baseline",
    )
    args = parser.parse_args(argv)

    if args.measure:
        variant, n = args.measure
        print(json.dumps(measure(variant, int(n))))
        return 0

    if args.smoke:
        sizes: tuple[int, ...] = (_SMOKE_SIZE,)
        shard_counts: tuple[int, ...] = (2,)
    elif args.quick:
        sizes, shard_counts = _QUICK_SIZES, _SHARD_COUNTS
    else:
        sizes, shard_counts = _SIZES, _SHARD_COUNTS

    results = _sweep(sizes, shard_counts)
    envelopes = _envelopes(results)
    text = _render(results, envelopes)
    print(text)
    if not (args.smoke or args.quick):
        payload = {
            "m": _M,
            "k": _K,
            "seed": _SEED,
            "results": results,
            "envelopes": envelopes,
        }
        path = _write_json(payload)
        path.with_name("shard_scaling.txt").write_text(text + "\n")
        print(f"\nstructured output: {path}")
    failed = [r for r in results if "error" in r]
    if failed:
        print(f"\n{len(failed)} configuration(s) failed", file=sys.stderr)
        return 1
    violations = _check_envelope(envelopes)
    if violations:
        print("\n" + "\n".join(violations), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
