"""Backend memory benchmark: dense vs lazy peak RSS and wall time at large n.

The lazy label-backed :class:`~repro.core.backend.LazyLabelBackend` exists
so BALLS and SAMPLING can run at ``n`` where the dense ``(n, n)`` matrix
does not fit: it stores the ``(n, m)`` labels and computes distance row
blocks on demand.  This bench puts a number on that claim — for each
``(algorithm, n, backend)`` configuration it runs the full
build-plus-solve in a **fresh subprocess** and records the child's peak
RSS (``resource.getrusage``) and wall time.  A subprocess per
configuration is not optional: ``ru_maxrss`` is a monotone high-water
mark, so measurements inside one process would contaminate each other.

The dense configuration at the largest size is *skipped, not attempted*
(a ~10 GB matrix allocation proves nothing about the lazy path), with
the reason recorded in the structured output.

Runs three ways:

- under pytest-benchmark with the other benches, at quick sizes
  (``pytest benchmarks/bench_backend.py``);
- standalone for the committed report: ``python benchmarks/bench_backend.py``
  emits ``reports/BENCH_backend.json`` + ``reports/backend_memory.txt``;
- CI smoke: ``python benchmarks/bench_backend.py --smoke`` runs only the
  lazy configurations at n = 20000 (honours ``REPRO_JOBS``).
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

SRC_DIR = Path(__file__).resolve().parent.parent / "src"
if str(SRC_DIR) not in sys.path:
    sys.path.insert(0, str(SRC_DIR))

from repro.experiments import banner, render_table  # noqa: E402

_M = 8
_K = 10
_NOISE = 0.15
_SIZES = (5_000, 20_000, 50_000)
_QUICK_SIZES = (1_500,)
_SMOKE_SIZE = 20_000
_ALGORITHMS = ("balls", "sampling")
#: Above this n the dense configuration is skipped outright.
_DENSE_SKIP_N = 50_000


def _label_matrix(n: int, seed: int) -> np.ndarray:
    """Planted-cluster inputs: each clustering is the ground truth plus noise.

    Uniform random labels would make every pair distance ~(k-1)/k >> 1/2 and
    degenerate BALLS into n singleton balls — structured inputs are both the
    realistic workload and the one where cluster count stays O(k).
    """
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, _K, size=n)
    matrix = np.repeat(truth[:, None], _M, axis=1)
    flips = rng.random((n, _M)) < _NOISE
    matrix[flips] = rng.integers(0, _K, size=int(flips.sum()))
    return matrix.astype(np.int32)


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (Linux: KiB units)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak * (1 if sys.platform == "darwin" else 1024)


def measure(backend: str, n: int, algorithm: str) -> dict:
    """Child-process body: build the instance, run one algorithm, report."""
    from repro.algorithms.agglomerative import agglomerative
    from repro.algorithms.balls import balls
    from repro.algorithms.sampling import sampling
    from repro.core.instance import CorrelationInstance

    matrix = _label_matrix(n, seed=n)
    start = time.perf_counter()
    instance = CorrelationInstance.from_label_matrix(matrix, n_jobs=None, backend=backend)
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    if algorithm == "balls":
        clustering = balls(instance)
    elif algorithm == "sampling":
        clustering = sampling(instance, agglomerative, rng=0, n_jobs=None)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    solve_seconds = time.perf_counter() - start

    return {
        "backend": backend,
        "n": n,
        "m": _M,
        "algorithm": algorithm,
        "k": clustering.k,
        "build_seconds": build_seconds,
        "solve_seconds": solve_seconds,
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def _measure_in_subprocess(backend: str, n: int, algorithm: str) -> dict:
    """Run one configuration in a fresh interpreter for a clean RSS high-water."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, __file__, "--measure", backend, str(n), algorithm],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if completed.returncode != 0:
        return {
            "backend": backend,
            "n": n,
            "algorithm": algorithm,
            "error": completed.stderr.strip().splitlines()[-1] if completed.stderr else "crashed",
        }
    return json.loads(completed.stdout)


def _sweep(sizes: tuple[int, ...], backends: tuple[str, ...]) -> list[dict]:
    results: list[dict] = []
    for n in sizes:
        for algorithm in _ALGORITHMS:
            for backend in backends:
                if backend == "dense" and n >= _DENSE_SKIP_N:
                    results.append(
                        {
                            "backend": backend,
                            "n": n,
                            "algorithm": algorithm,
                            "skipped": (
                                "dense X at this n is a ~10 GB float32 allocation; "
                                "the configuration exists only to be avoided"
                            ),
                        }
                    )
                    continue
                results.append(_measure_in_subprocess(backend, n, algorithm))
    return results


def _ratios(results: list[dict]) -> list[dict]:
    """Lazy-vs-dense peak-RSS ratio per (algorithm, n) where both ran."""
    by_key = {
        (r["algorithm"], r["n"], r["backend"]): r for r in results if "peak_rss_bytes" in r
    }
    ratios = []
    for algorithm in _ALGORITHMS:
        for n in sorted({r["n"] for r in results}):
            dense = by_key.get((algorithm, n, "dense"))
            lazy = by_key.get((algorithm, n, "lazy"))
            if dense and lazy:
                ratios.append(
                    {
                        "algorithm": algorithm,
                        "n": n,
                        "lazy_over_dense_peak_rss": lazy["peak_rss_bytes"]
                        / dense["peak_rss_bytes"],
                    }
                )
    return ratios


def _render(results: list[dict], ratios: list[dict]) -> str:
    rows = []
    for r in results:
        if "skipped" in r:
            rows.append((r["algorithm"], f"{r['n']:,}", r["backend"], "skipped", "--", "--"))
        elif "error" in r:
            rows.append((r["algorithm"], f"{r['n']:,}", r["backend"], "error", "--", "--"))
        else:
            rows.append(
                (
                    r["algorithm"],
                    f"{r['n']:,}",
                    r["backend"],
                    f"{r['peak_rss_bytes'] / 2**20:,.0f} MiB",
                    f"{r['build_seconds']:.2f}",
                    f"{r['solve_seconds']:.2f}",
                )
            )
    text = render_table(
        ("algorithm", "n", "backend", "peak RSS", "build s", "solve s"),
        rows,
        title=banner(f"pair-distance backends — peak memory (m={_M})"),
    )
    if ratios:
        ratio_rows = [
            (r["algorithm"], f"{r['n']:,}", f"{100.0 * r['lazy_over_dense_peak_rss']:.1f}%")
            for r in ratios
        ]
        text += "\n\n" + render_table(
            ("algorithm", "n", "lazy / dense peak RSS"), ratio_rows
        )
    return text


def _write_json(payload: dict) -> Path:
    reports = Path(__file__).resolve().parent.parent / "reports"
    reports.mkdir(exist_ok=True)
    path = reports / "BENCH_backend.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_backend(benchmark, report):
    """pytest entry: quick subprocess sweep, report only (no committed JSON)."""
    from conftest import once

    results = once(benchmark, lambda: _sweep(_QUICK_SIZES, ("dense", "lazy")))
    ratios = _ratios(results)
    report("backend_memory_quick", _render(results, ratios))
    measured = [r for r in results if "peak_rss_bytes" in r]
    assert len(measured) == len(results), f"configurations failed: {results}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--measure",
        nargs=3,
        metavar=("BACKEND", "N", "ALGORITHM"),
        help="internal: measure one configuration and print JSON",
    )
    parser.add_argument("--quick", action="store_true", help="small sizes for local sanity runs")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: lazy-only configurations at n=20000 (honours REPRO_JOBS)",
    )
    args = parser.parse_args(argv)

    if args.measure:
        backend, n, algorithm = args.measure
        print(json.dumps(measure(backend, int(n), algorithm)))
        return 0

    if args.smoke:
        sizes: tuple[int, ...] = (_SMOKE_SIZE,)
        backends: tuple[str, ...] = ("lazy",)
    elif args.quick:
        sizes, backends = _QUICK_SIZES, ("dense", "lazy")
    else:
        sizes, backends = _SIZES, ("dense", "lazy")

    results = _sweep(sizes, backends)
    ratios = _ratios(results)
    text = _render(results, ratios)
    print(text)
    if not (args.smoke or args.quick):
        payload = {"m": _M, "k": _K, "results": results, "ratios": ratios}
        path = _write_json(payload)
        path.with_name("backend_memory.txt").write_text(text + "\n")
        print(f"\nstructured output: {path}")
    failed = [r for r in results if "error" in r]
    if failed:
        print(f"\n{len(failed)} configuration(s) failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
