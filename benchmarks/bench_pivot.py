"""CC-PIVOT / CMSY vs BALLS and SAMPLING: cost vs wall-clock vs memory.

The pivot family exists to give near-linear aggregation with a proven
expected factor: no ``(n, n)`` structure, one vectorized row query per
pivot.  This bench puts numbers on that claim.  For each workload —
the paper's Votes and Mushrooms tables plus a planted synthetic at
``m = 5`` up to ``n = 10**6`` — it runs each configuration in a **fresh
subprocess** (clean ``resource.getrusage`` high-water) and records wall
time, peak RSS and the consensus objective ``d(C)``.

A ``baseline`` variant imports the library and builds the label matrix
without clustering anything, so the interesting memory number is the
ratio ``rss / baseline-rss``: PIVOT at ``n = 10**6`` must stay within
:data:`PIVOT_RSS_ENVELOPE` (3x) of just holding the matrix, and both
pivot methods must stay within :data:`PIVOT_COST_ENVELOPE` (1.15x) of
single-shot SAMPLING's objective on the paper datasets.

Both pivot variants run at ``repeats=5`` (keep the cheapest of five
sweeps): single sweeps of an *expected*-factor algorithm have real
variance, and the standard amplification makes the envelope a stable,
deterministic gate instead of a per-seed coin flip.  The wall-clock
column prices that in — five sweeps are still an order of magnitude
under one SAMPLING pass.

Runs three ways:

- under pytest-benchmark with the other benches, at quick sizes
  (``pytest benchmarks/bench_pivot.py``) — also asserts the envelopes;
- standalone for the committed report: ``python benchmarks/bench_pivot.py``
  sweeps the paper datasets plus n = 10**6 and emits
  ``reports/BENCH_pivot.json`` + ``reports/pivot_scaling.txt``;
- CI smoke: ``python benchmarks/bench_pivot.py --smoke`` runs pivot +
  cmsy + sampling on Votes (honours ``REPRO_JOBS``) and fails when the
  cost envelope is violated.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

SRC_DIR = Path(__file__).resolve().parent.parent / "src"
if str(SRC_DIR) not in sys.path:
    sys.path.insert(0, str(SRC_DIR))

from repro.experiments import banner, render_table  # noqa: E402

#: pivot/cmsy objective must stay within this factor of single-shot SAMPLING.
PIVOT_COST_ENVELOPE = 1.15
#: pivot peak RSS must stay within this factor of just holding the matrix.
PIVOT_RSS_ENVELOPE = 3.0

_M = 5
_K = 10
_NOISE = 0.15
_SEED = 7
#: best-of-R amplification for the expected-factor methods.
_REPEATS = 5
_PLANTED_FULL = 1_000_000
_PLANTED_QUICK = 5_000
#: BALLS materializes the (n, n) instance; cap its workloads accordingly.
_BALLS_MAX_N = 20_000


def _planted_matrix(n: int) -> np.ndarray:
    """Planted-cluster inputs at the acceptance shape (m=5)."""
    rng = np.random.default_rng(n)
    truth = rng.integers(0, _K, size=n)
    matrix = np.repeat(truth[:, None], _M, axis=1)
    flips = rng.random((n, _M)) < _NOISE
    matrix[flips] = rng.integers(0, _K, size=int(flips.sum()))
    return matrix.astype(np.int32)


def _workload_matrix(workload: str) -> np.ndarray:
    if workload == "votes":
        from repro.datasets import generate_votes

        return generate_votes(rng=0).label_matrix()
    if workload == "mushrooms":
        from repro.datasets import generate_mushrooms

        return generate_mushrooms(rng=0).label_matrix()
    if workload.startswith("planted:"):
        return _planted_matrix(int(workload.split(":")[1]))
    raise ValueError(f"unknown workload {workload!r}")


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (Linux: KiB units)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak * (1 if sys.platform == "darwin" else 1024)


def measure(variant: str, workload: str) -> dict:
    """Child-process body: aggregate one way, report cost/time/memory.

    ``variant`` is ``baseline`` (build the matrix, cluster nothing — the
    RSS floor every ratio is taken against), ``sampling``, ``balls``,
    ``pivot`` or ``cmsy``.  All stochastic variants share one root seed.
    """
    from repro.core.aggregate import aggregate
    from repro.core.distance import total_disagreement

    matrix = _workload_matrix(workload)
    n, m = matrix.shape
    if variant == "baseline":
        checksum = int(matrix.sum())  # touch every page
        return {
            "variant": variant,
            "workload": workload,
            "n": n,
            "m": m,
            "checksum": checksum,
            "seconds": 0.0,
            "peak_rss_bytes": _peak_rss_bytes(),
        }
    start = time.perf_counter()
    if variant == "sampling":
        result = aggregate(
            matrix, method="sampling", rng=_SEED, compute_lower_bound=False, n_jobs=None
        )
    elif variant == "balls":
        result = aggregate(matrix, method="balls", compute_lower_bound=False, n_jobs=None)
    elif variant in ("pivot", "cmsy"):
        result = aggregate(
            matrix, method=variant, rng=_SEED, repeats=_REPEATS, compute_lower_bound=False
        )
    else:
        raise ValueError(f"unknown variant {variant!r}")
    seconds = time.perf_counter() - start
    disagreements = float(total_disagreement(matrix, result.clustering))
    return {
        "variant": variant,
        "workload": workload,
        "n": n,
        "m": m,
        "k": result.clustering.k,
        "cost": disagreements / m,
        "seconds": seconds,
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def _measure_in_subprocess(variant: str, workload: str) -> dict:
    """Run one configuration in a fresh interpreter for a clean RSS high-water."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, __file__, "--measure", variant, workload],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if completed.returncode != 0:
        return {
            "variant": variant,
            "workload": workload,
            "error": completed.stderr.strip().splitlines()[-1] if completed.stderr else "crashed",
        }
    return json.loads(completed.stdout)


def _variants_for(workload: str) -> tuple[str, ...]:
    matrix_n = (
        int(workload.split(":")[1]) if workload.startswith("planted:") else _BALLS_MAX_N - 1
    )
    if matrix_n > _BALLS_MAX_N:
        # BALLS needs the quadratic instance; skip it where that would
        # defeat the point of a memory benchmark.
        return ("baseline", "sampling", "pivot", "cmsy")
    return ("baseline", "sampling", "balls", "pivot", "cmsy")


def _sweep(workloads: tuple[str, ...]) -> list[dict]:
    results: list[dict] = []
    for workload in workloads:
        for variant in _variants_for(workload):
            results.append(_measure_in_subprocess(variant, workload))
    return results


def _envelopes(results: list[dict]) -> list[dict]:
    """Per-workload pivot/cmsy ratios against SAMPLING and the RSS floor."""
    sampling = {
        r["workload"]: r for r in results if r.get("variant") == "sampling" and "cost" in r
    }
    baseline = {
        r["workload"]: r for r in results if r.get("variant") == "baseline" and "error" not in r
    }
    out = []
    for r in results:
        if r.get("variant") not in ("pivot", "cmsy") or "cost" not in r:
            continue
        base = sampling.get(r["workload"])
        floor = baseline.get(r["workload"])
        if base is None or floor is None:
            continue
        out.append(
            {
                "workload": r["workload"],
                "variant": r["variant"],
                "cost_over_sampling": r["cost"] / base["cost"] if base["cost"] else 1.0,
                "seconds_over_sampling": (
                    r["seconds"] / base["seconds"] if base["seconds"] else 1.0
                ),
                "rss_over_baseline": r["peak_rss_bytes"] / floor["peak_rss_bytes"],
            }
        )
    return out


def _render(results: list[dict], envelopes: list[dict]) -> str:
    rows = []
    for r in results:
        if "error" in r:
            rows.append((r["workload"], r["variant"], "error", "--", "--", "--"))
        elif r["variant"] == "baseline":
            rows.append(
                (
                    r["workload"],
                    r["variant"],
                    "--",
                    "--",
                    f"{r['peak_rss_bytes'] / 2**20:,.0f} MiB",
                    "--",
                )
            )
        else:
            rows.append(
                (
                    r["workload"],
                    r["variant"],
                    f"{r['cost']:,.1f}",
                    f"{r['k']}",
                    f"{r['peak_rss_bytes'] / 2**20:,.0f} MiB",
                    f"{r['seconds']:.2f}",
                )
            )
    text = render_table(
        ("workload", "variant", "d(C)", "k", "peak RSS", "wall s"),
        rows,
        title=banner("CC-PIVOT / CMSY vs BALLS and SAMPLING"),
    )
    if envelopes:
        ratio_rows = [
            (
                e["workload"],
                e["variant"],
                f"{e['cost_over_sampling']:.3f}",
                f"{100.0 * e['seconds_over_sampling']:.1f}%",
                f"{e['rss_over_baseline']:.2f}x",
            )
            for e in envelopes
        ]
        text += "\n\n" + render_table(
            ("workload", "variant", "cost / sampling", "time / sampling", "RSS / matrix"),
            ratio_rows,
        )
    return text


def _check_envelopes(envelopes: list[dict]) -> list[str]:
    violations = [
        f"{e['variant']} on {e['workload']}: cost ratio {e['cost_over_sampling']:.3f} "
        f"exceeds the documented envelope {PIVOT_COST_ENVELOPE}"
        for e in envelopes
        if e["cost_over_sampling"] > PIVOT_COST_ENVELOPE
    ]
    violations += [
        f"{e['variant']} on {e['workload']}: peak RSS {e['rss_over_baseline']:.2f}x the "
        f"label-matrix floor exceeds the envelope {PIVOT_RSS_ENVELOPE}x"
        for e in envelopes
        if e["workload"].startswith("planted:") and e["rss_over_baseline"] > PIVOT_RSS_ENVELOPE
    ]
    return violations


def _write_json(payload: dict) -> Path:
    reports = Path(__file__).resolve().parent.parent / "reports"
    reports.mkdir(exist_ok=True)
    path = reports / "BENCH_pivot.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_pivot(benchmark, report):
    """pytest entry: quick subprocess sweep, envelopes asserted."""
    from conftest import once

    workloads = ("votes", f"planted:{_PLANTED_QUICK}")
    results = once(benchmark, lambda: _sweep(workloads))
    envelopes = _envelopes(results)
    report("pivot_scaling_quick", _render(results, envelopes))
    failed = [r for r in results if "error" in r]
    assert not failed, f"configurations failed: {failed}"
    violations = _check_envelopes(envelopes)
    assert not violations, "; ".join(violations)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--measure",
        nargs=2,
        metavar=("VARIANT", "WORKLOAD"),
        help="internal: measure one configuration and print JSON",
    )
    parser.add_argument("--quick", action="store_true", help="small sizes for local sanity runs")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: pivot + cmsy + sampling on Votes, cost envelope enforced",
    )
    args = parser.parse_args(argv)

    if args.measure:
        variant, workload = args.measure
        print(json.dumps(measure(variant, workload)))
        return 0

    if args.smoke:
        workloads: tuple[str, ...] = ("votes",)
    elif args.quick:
        workloads = ("votes", f"planted:{_PLANTED_QUICK}")
    else:
        workloads = ("votes", "mushrooms", f"planted:{_PLANTED_FULL}")

    results = _sweep(workloads)
    envelopes = _envelopes(results)
    text = _render(results, envelopes)
    print(text)
    if not (args.smoke or args.quick):
        payload = {
            "m_planted": _M,
            "k_planted": _K,
            "seed": _SEED,
            "repeats": _REPEATS,
            "cost_envelope": PIVOT_COST_ENVELOPE,
            "rss_envelope": PIVOT_RSS_ENVELOPE,
            "results": results,
            "envelopes": envelopes,
        }
        path = _write_json(payload)
        path.with_name("pivot_scaling.txt").write_text(text + "\n")
        print(f"\nstructured output: {path}")
    failed = [r for r in results if "error" in r]
    if failed:
        print(f"\n{len(failed)} configuration(s) failed", file=sys.stderr)
        return 1
    violations = _check_envelopes(envelopes)
    if violations:
        print("\n" + "\n".join(violations), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
