"""A3 — ablation: empirical approximation ratios against the exact optimum.

The paper proves worst-case factors (2(1-1/m) for BESTCLUSTERING, 3 for
BALLS at α=1/4, 2 for AGGLOMERATIVE at m=3) but evaluates quality only
against the pairwise lower bound.  With the branch-and-bound solver we can
measure the *actual* ratios on many small random aggregation instances.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import (
    agglomerative,
    balls,
    best_clustering,
    exact_optimum,
    furthest,
    local_search,
)
from repro.core.instance import CorrelationInstance
from repro.core.labels import as_label_matrix
from repro.experiments import banner, render_table

from conftest import once

_TRIALS = 40


def _random_case(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(6, 12))
    m = int(rng.integers(3, 7))
    k = int(rng.integers(2, 4))
    matrix = as_label_matrix([rng.integers(0, k, size=n) for _ in range(m)])
    return matrix, CorrelationInstance.from_label_matrix(matrix)


def bench_ablation_approx_ratios(benchmark, report):
    def run():
        ratios: dict[str, list[float]] = {
            name: []
            for name in ("BEST", "BALLS(1/4)", "BALLS(2/5)", "AGGLOMERATIVE", "FURTHEST", "LOCAL-SEARCH", "LB/OPT")
        }
        for seed in range(_TRIALS):
            matrix, instance = _random_case(seed)
            _, optimal = exact_optimum(instance)
            if optimal <= 0:
                continue
            candidates = {
                "BEST": instance.cost(best_clustering(matrix)),
                "BALLS(1/4)": instance.cost(balls(instance, alpha=0.25)),
                "BALLS(2/5)": instance.cost(balls(instance, alpha=0.4)),
                "AGGLOMERATIVE": instance.cost(agglomerative(instance)),
                "FURTHEST": instance.cost(furthest(instance)),
                "LOCAL-SEARCH": instance.cost(local_search(instance)),
            }
            for name, cost in candidates.items():
                ratios[name].append(cost / optimal)
            ratios["LB/OPT"].append(instance.lower_bound() / optimal)
        return ratios

    ratios = once(benchmark, run)

    rows = [
        (name, f"{np.mean(values):.3f}", f"{np.max(values):.3f}", f"{np.min(values):.3f}")
        for name, values in ratios.items()
    ]
    text = render_table(
        ("algorithm", "mean ratio", "max ratio", "min ratio"),
        rows,
        title=banner(f"A3 — cost / optimum over {_TRIALS} random aggregation instances"),
    )
    text += (
        "\n\nguarantees: BEST <= 2(1-1/m); BALLS(1/4) <= 3; LB/OPT <= 1."
        "\ntypical behaviour is far better than the worst case."
    )
    report("ablation_approx", text)

    assert max(ratios["BALLS(1/4)"]) <= 3.0 + 1e-9  # Theorem 1
    assert max(ratios["BEST"]) <= 2.0 + 1e-9  # 2(1 - 1/m) < 2
    assert max(ratios["LB/OPT"]) <= 1.0 + 1e-9
    assert np.mean(ratios["LOCAL-SEARCH"]) <= np.mean(ratios["BEST"]) + 1e-9
