"""E5 — Table 3: clustering categorical data, the Mushrooms dataset.

Same layout as Table 2, with ROCK and LIMBO also run at the k values the
paper reports (2, 7, 9).  ROCK uses θ = 0.45 (calibrated to the synthetic
stand-in's Jaccard scale; the paper's 0.8 leaves the link graph empty
here — see DESIGN.md §4); LIMBO uses the paper's φ = 0.3.
"""

from __future__ import annotations

from repro.datasets import generate_mushrooms
from repro.experiments import banner, categorical_table, current_scale, render_table

from conftest import once

#: Table 3 of the paper (full 8124 rows), E_D in millions.
_PAPER_ROWS = {
    "Class labels": (2, 0.0, 13.537),
    "Lower bound": (None, None, 8.388),
    "BEST": (5, 35.4, 8.542),
    "AGGLOMERATIVE": (7, 11.1, 9.990),
    "FURTHEST": (9, 10.4, 10.169),
    "BALLS(a=0.4)": (10, 14.2, 11.448),
    "LOCAL-SEARCH": (10, 10.7, 9.929),
    "ROCK(k=2)": (2, 48.2, 16.777),
    "ROCK(k=7)": (7, 25.9, 10.568),
    "ROCK(k=9)": (9, 9.9, 10.312),
    "LIMBO(k=2)": (2, 10.9, 13.011),
    "LIMBO(k=7)": (7, 4.2, 10.505),
    "LIMBO(k=9)": (9, 4.2, 10.360),
}

_ROCK_THETA = 0.45
_LIMBO_PHI = 0.3


def bench_table3_mushrooms(benchmark, report):
    scale = current_scale()
    dataset = generate_mushrooms(n=scale.mushrooms_rows, rng=0)
    # ROCK's merging is cubic; at the full 8124 rows we use the original
    # paper's own remedy (cluster a sample, link-assign the rest).
    rock_sample = 2500 if scale.name == "paper" else None
    rows = once(
        benchmark,
        lambda: categorical_table(
            dataset,
            rock_params=((2, _ROCK_THETA), (7, _ROCK_THETA), (9, _ROCK_THETA)),
            limbo_params=((2, _LIMBO_PHI), (7, _LIMBO_PHI), (9, _LIMBO_PHI)),
            rock_sample=rock_sample,
        ),
    )

    display = []
    for row in rows:
        key = row.label.replace(f",t={_ROCK_THETA}", "").replace(f",phi={_LIMBO_PHI}", "")
        paper = _PAPER_ROWS.get(key)
        display.append(
            (
                row.label,
                row.k if row.k is not None else "-",
                f"{row.classification_error_pct:.1f}" if row.classification_error_pct is not None else "-",
                f"{row.disagreement_cost:,.0f}",
                f"{paper[0]}/{paper[1]}/{paper[2]}M" if paper else "-",
                f"{row.seconds:.2f}",
            )
        )
    text = render_table(
        ("method", "k", "E_C (%)", "E_D", "paper k/E_C/E_D", "seconds"),
        display,
        title=banner(f"Table 3 — Mushrooms dataset ({scale.describe()})"),
    )
    text += (
        "\n\npaper shape: parameter-free aggregation finds ~7-10 clusters at"
        "\nE_C ~ 10-14%; ROCK needs the right k (awful at k=2); BEST has low E_D"
        "\nbut poor E_C.  (LIMBO's 4.2% depends on the real data's"
        "\nnear-deterministic odor->class rule; see EXPERIMENTS.md.)"
    )
    report("table3_mushrooms", text)

    by_label = {row.label: row for row in rows}
    agg = by_label["AGGLOMERATIVE"]
    # Raw k includes outlier micro-clusters; the structural claim is about
    # clusters holding at least ~1% of the data (cf. Table 1's seven).
    assert 5 <= agg.k <= 32, f"implausible consensus cluster count {agg.k}"
    assert agg.classification_error_pct < 16.0
    # ROCK at k=2 merges the classes catastrophically, as in the paper.
    rock2 = by_label[f"ROCK(k=2,t={_ROCK_THETA})"]
    assert rock2.classification_error_pct > 2 * agg.classification_error_pct
    # The lower bound is below every method's E_D.
    lower = by_label["Lower bound"].disagreement_cost
    for row in rows:
        if row.label != "Lower bound":
            assert row.disagreement_cost >= lower - 1e-6
