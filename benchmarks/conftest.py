"""Shared helpers for the benchmark harness.

Every bench prints its reproduced table (in the paper's layout, with the
paper's published values alongside where applicable) straight to the
terminal — bypassing pytest's capture so ``pytest benchmarks/
--benchmark-only | tee bench_output.txt`` records everything — and also
writes it under ``reports/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORTS_DIR = Path(__file__).resolve().parent.parent / "reports"


@pytest.fixture
def report(capsys):
    """Emit a bench report: print through capture and save to reports/."""

    def emit(name: str, text: str) -> None:
        REPORTS_DIR.mkdir(exist_ok=True)
        (REPORTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(text)

    return emit


def once(benchmark, fn):
    """Time ``fn`` exactly once (experiments are too heavy to repeat)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
