"""A5 — the §6 related-work consensus methods vs the paper's algorithms.

The paper argues (§6) that the competing consensus formulations — Strehl
& Ghosh's hypergraph cuts, Fred & Jain's single-linkage evidence
accumulation, Topchy et al.'s mixture model — either require the number
of clusters or ignore the penalty for merging dissimilar nodes.  This
bench puts them side by side with the paper's algorithms on the Figure-4
workload (planted Gaussian clusters + noise, k-means k=2..10 inputs) and
on Votes, reporting the objective the paper optimizes (E_D) plus external
quality, and — crucially — whether each method had to be told k.
"""

from __future__ import annotations

import numpy as np

from repro import aggregate, Clustering
from repro.algorithms import simulated_annealing
from repro.consensus import (
    cspa,
    evidence_accumulation,
    genetic_consensus,
    mcla,
    mixture_consensus,
)
from repro.core.instance import CorrelationInstance
from repro.datasets import gaussian_with_noise, generate_votes
from repro.experiments import banner, kmeans_sweep, render_table
from repro.metrics import adjusted_rand_index, classification_error

from conftest import once


def _gaussian_case():
    data = gaussian_with_noise(5, points_per_cluster=100, noise_fraction=0.2, rng=5)
    matrix = kmeans_sweep(data.points, rng=85)
    instance = CorrelationInstance.from_label_matrix(matrix)
    signal = data.truth >= 0

    def score(clustering: Clustering):
        ari = adjusted_rand_index(clustering.labels[signal], data.truth[signal])
        return clustering.k, instance.cost(clustering), ari

    return matrix, instance, score


def bench_ablation_consensus_methods(benchmark, report):
    matrix, instance, score = _gaussian_case()

    def run():
        rows = []
        agg = aggregate(instance, method="agglomerative").clustering
        rows.append(("AGGLOMERATIVE (paper)", "no", *score(agg)))
        ls = aggregate(instance, method="local-search").clustering
        rows.append(("LOCALSEARCH (paper)", "no", *score(ls)))
        rows.append(
            ("ANNEALING (Filkov-Skiena)", "no", *score(simulated_annealing(instance, rng=0)))
        )
        rows.append(("EAC lifetime (Fred-Jain)", "no", *score(evidence_accumulation(matrix))))
        rows.append(("EAC k=5", "yes", *score(evidence_accumulation(matrix, k=5))))
        rows.append(("CSPA k=5 (Strehl-Ghosh)", "yes", *score(cspa(matrix, k=5))))
        rows.append(("CSPA k=3 (wrong k)", "yes", *score(cspa(matrix, k=3))))
        rows.append(("MCLA k=5 (Strehl-Ghosh)", "yes", *score(mcla(matrix, k=5))))
        rows.append(
            ("MIXTURE k=5 (Topchy)", "yes", *score(mixture_consensus(matrix, k=5, rng=0).clustering))
        )
        return rows

    rows = once(benchmark, run)
    display = [
        (name, needs_k, k, f"{cost:,.0f}", f"{ari:.3f}")
        for name, needs_k, k, cost, ari in rows
    ]
    text = render_table(
        ("method", "needs k?", "k found", "E_D (d(C))", "ARI on signal"),
        display,
        title=banner("A5 — related-work consensus methods, Figure-4 workload (k*=5 + noise)"),
    )
    text += (
        "\n\npaper's point (§6): the alternatives need k (or a model-selection"
        "\nloop); CSPA at the wrong k merges far-apart nodes without penalty."
    )
    report("ablation_consensus", text)

    by_name = {row[0]: row for row in rows}
    paper_cost = by_name["AGGLOMERATIVE (paper)"][3]
    # The paper's parameter-free algorithms should match or beat every
    # alternative on the disagreement objective they optimize.
    for name, needs_k, k, cost, ari in rows:
        if name.startswith(("CSPA", "MCLA", "EAC", "MIXTURE")):
            assert cost >= paper_cost - 1e-6, f"{name} beat the objective optimizer"
    # Forcing the wrong k must hurt the objective.
    assert by_name["CSPA k=3 (wrong k)"][3] > by_name["CSPA k=5 (Strehl-Ghosh)"][3]


def bench_ablation_consensus_votes(benchmark, report):
    dataset = generate_votes(rng=0)
    matrix = dataset.label_matrix()
    instance = CorrelationInstance.from_label_matrix(matrix)

    def run():
        rows = []
        for name, clustering in (
            ("LOCALSEARCH (paper)", aggregate(instance, method="local-search").clustering),
            ("ANNEALING", simulated_annealing(instance, rng=0)),
            ("EAC lifetime", evidence_accumulation(matrix)),
            ("CSPA k=2", cspa(matrix, k=2)),
            ("MCLA k=2", mcla(matrix, k=2)),
            ("MIXTURE k=2", mixture_consensus(matrix, k=2, rng=0).clustering),
            ("GENETIC (120 gen)", genetic_consensus(instance, generations=120, rng=0)),
        ):
            cost = instance.cost(clustering)
            error = classification_error(clustering, dataset.classes)
            rows.append((name, clustering.k, f"{cost:,.0f}", f"{error * 100:.1f}"))
        return rows

    rows = once(benchmark, run)
    text = render_table(
        ("method", "k", "E_D", "E_C (%)"),
        rows,
        title=banner("A5 — related-work consensus methods on Votes"),
    )
    report("ablation_consensus_votes", text)
    assert all(int(row[1]) >= 1 for row in rows)
