"""Aggregation-service throughput: observe requests/s vs. writer concurrency.

Starts one in-process :class:`repro.serve.AggregationService` (real
sockets, background event loop) and hammers a streaming session with 1,
8, and 64 concurrent writers, each on its own keep-alive connection.
The interesting number is how sustained requests/s scales with writers:
micro-batching should let the single engine worker absorb a 64-writer
burst at a small multiple of the serial rate (one executor dispatch and
one snapshot publish per batch, not per request), with zero failed
requests below the queue limit.  Results land in
``reports/BENCH_serve.json`` — the mean batch size per level makes the
coalescing visible directly.

Runs two ways:

- under pytest-benchmark with the other benches
  (``pytest benchmarks/bench_serve.py``);
- standalone for CI smoke runs: ``python benchmarks/bench_serve.py
  --quick``.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.experiments import banner, render_table
from repro.serve import AggregationService, ServeConfig

from conftest import REPORTS_DIR

_N = 400
_QUICK_N = 120
_REQUESTS = 384  # divisible by every writer count
_QUICK_REQUESTS = 128
_WRITERS = (1, 8, 64)
_K = 12  # label alphabet of the synthetic clusterings


class _Server:
    """The service on a background event loop (bench-local harness)."""

    def __init__(self, config: ServeConfig) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever, daemon=True)
        self._thread.start()
        self.service = AggregationService(config)
        self._run(self.service.start())
        self.port = self.service.port

    def _run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(60)

    def close(self) -> None:
        self._run(self.service.shutdown())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


def _columns(n: int, count: int, rng: np.random.Generator) -> list[bytes]:
    """Pre-encoded observe bodies so the timed loop measures the service."""
    bodies = []
    for _ in range(count):
        labels = rng.integers(0, _K, size=n).tolist()
        bodies.append(json.dumps({"labels": labels}).encode("utf-8"))
    return bodies


def _writer(port: int, session: str, bodies: list[bytes]) -> tuple[int, int, list[int]]:
    """Send ``bodies`` on one keep-alive connection; returns (ok, errors, batches)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    ok = errors = 0
    batches: list[int] = []
    try:
        for body in bodies:
            conn.request("POST", f"/sessions/{session}/observe", body=body)
            response = conn.getresponse()
            payload = response.read()
            if response.status == 200:
                ok += 1
                batches.append(json.loads(payload)["batched"])
            else:
                errors += 1
    finally:
        conn.close()
    return ok, errors, batches


def _level(
    server: _Server, n: int, writers: int, requests: int, seed: int, tag: str = "w"
) -> dict:
    """One concurrency level: ``requests`` observes spread over ``writers``."""
    session = f"bench-{tag}{writers}"
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
    conn.request(
        "POST", "/sessions", body=json.dumps({"name": session, "n": n, "seed": seed})
    )
    response = conn.getresponse()
    response.read()
    assert response.status == 201, f"session create failed: {response.status}"
    conn.close()

    rng = np.random.default_rng(seed)
    bodies = _columns(n, requests, rng)
    share = requests // writers
    chunks = [bodies[i * share : (i + 1) * share] for i in range(writers)]

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=writers) as pool:
        outcomes = list(
            pool.map(lambda chunk: _writer(server.port, session, chunk), chunks)
        )
    elapsed = time.perf_counter() - start

    ok = sum(o[0] for o in outcomes)
    errors = sum(o[1] for o in outcomes)
    batches = [size for o in outcomes for size in o[2]]
    return {
        "writers": writers,
        "requests": requests,
        "ok": ok,
        "errors": errors,
        "seconds": elapsed,
        "requests_per_second": ok / elapsed,
        "mean_batch": float(np.mean(batches)) if batches else 0.0,
        "max_batch": int(np.max(batches)) if batches else 0,
    }


def _run(n: int, requests: int) -> tuple[str, dict]:
    server = _Server(ServeConfig(port=0, queue_limit=1024, batch_window=0.002))
    try:
        _level(server, n, 1, min(requests, 32), seed=99, tag="warmup")  # warm-up
        levels = [
            _level(server, n, writers, requests, seed=writers) for writers in _WRITERS
        ]
    finally:
        server.close()

    payload = {"n": n, "requests_per_level": requests, "levels": levels}
    rows = [
        (
            str(level["writers"]),
            f"{level['requests_per_second']:.0f}",
            f"{level['mean_batch']:.2f}",
            str(level["max_batch"]),
            str(level["errors"]),
        )
        for level in levels
    ]
    text = render_table(
        ("writers", "req/s", "mean batch", "max batch", "errors"),
        rows,
        title=banner(f"repro.serve — observe throughput (n={n}, {requests} requests/level)"),
    )
    return text, payload


def _write_json(payload: dict) -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / "BENCH_serve.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_serve(benchmark, report):
    from conftest import once

    text, payload = once(benchmark, lambda: _run(_N, _REQUESTS))
    _write_json(payload)
    report("serve_throughput", text)
    by_writers = {level["writers"]: level for level in payload["levels"]}
    assert all(level["errors"] == 0 for level in payload["levels"])
    # The acceptance bar: sustained throughput at >= 8 concurrent writers,
    # and visible coalescing once writers outnumber the engine worker.
    assert by_writers[8]["requests_per_second"] > 0
    assert by_writers[64]["mean_batch"] > 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small size for CI smoke runs")
    args = parser.parse_args(argv)
    n = _QUICK_N if args.quick else _N
    requests = _QUICK_REQUESTS if args.quick else _REQUESTS
    text, payload = _run(n, requests)
    path = _write_json(payload)
    print(text)
    print(f"\nreport: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
