"""E4 — Table 2: clustering categorical data, the Votes dataset.

Rows: class labels, the pairwise lower bound, the five aggregation
algorithms (BALLS at the paper's practical α = 0.4), ROCK and LIMBO.
E_C is the classification error against the republican/democrat label;
E_D is the paper's disagreement error (the correlation cost d(C)).

ROCK runs both at the θ = 0.73 the paper cites (calibrated to the *real*
UCI similarity scale) and at θ = 0.45, calibrated to the synthetic
stand-in's scale — see DESIGN.md §4 on the substitution.
"""

from __future__ import annotations

from repro.datasets import generate_votes
from repro.experiments import banner, categorical_table, render_table

from conftest import once

#: Table 2 of the paper, for side-by-side comparison.
_PAPER_ROWS = {
    "Class labels": (2, 0.0, 34184),
    "Lower bound": (None, None, 28805),
    "BEST": (3, 15.1, 31211),
    "AGGLOMERATIVE": (2, 14.7, 30408),
    "FURTHEST": (2, 13.3, 30259),
    "BALLS(a=0.4)": (2, 13.3, 30181),
    "LOCAL-SEARCH": (2, 11.9, 29967),
    "ROCK(k=2,t=0.73)": (2, 11.0, 32486),
    "LIMBO(k=2,phi=0.0)": (2, 11.0, 30147),
}


def bench_table2_votes(benchmark, report):
    dataset = generate_votes(rng=0)
    rows = once(
        benchmark,
        lambda: categorical_table(
            dataset,
            rock_params=((2, 0.73), (2, 0.45)),
            limbo_params=((2, 0.0),),
        ),
    )

    display = []
    for row in rows:
        paper = _PAPER_ROWS.get(row.label) or _PAPER_ROWS.get(row.label.replace("0.45", "0.73"))
        display.append(
            (
                row.label,
                row.k if row.k is not None else "-",
                f"{row.classification_error_pct:.1f}" if row.classification_error_pct is not None else "-",
                f"{row.disagreement_cost:,.0f}",
                f"{paper[0]}/{paper[1]}/{paper[2]:,}" if paper else "-",
                f"{row.seconds:.2f}",
            )
        )
    text = render_table(
        ("method", "k", "E_C (%)", "E_D", "paper k/E_C/E_D", "seconds"),
        display,
        title=banner("Table 2 — Votes dataset (435 rows, 16 attributes, 288 missing)"),
    )
    report("table2_votes", text)

    by_label = {row.label: row for row in rows}
    # Shape assertions mirroring the paper's findings.
    assert by_label["AGGLOMERATIVE"].k == 2, "consensus should find the two parties"
    assert by_label["FURTHEST"].k == 2
    assert by_label["BEST"].k == 3  # missing values form a third group
    lower = by_label["Lower bound"].disagreement_cost
    for label in ("AGGLOMERATIVE", "FURTHEST", "LOCAL-SEARCH", "BALLS(a=0.4)", "BEST"):
        assert by_label[label].disagreement_cost >= lower - 1e-6
    # LOCALSEARCH attains the best objective of all aggregation algorithms.
    assert by_label["LOCAL-SEARCH"].disagreement_cost == min(
        by_label[l].disagreement_cost
        for l in ("BEST", "AGGLOMERATIVE", "FURTHEST", "BALLS(a=0.4)", "LOCAL-SEARCH")
    )
    # E_C in the paper's low-teens regime for the main algorithms.
    for label in ("AGGLOMERATIVE", "FURTHEST", "LOCAL-SEARCH"):
        assert by_label[label].classification_error_pct < 20.0
