"""Observability overhead: spans + metrics cost when off, on, and traced.

The repro.obs design contract is that instrumentation is free to leave in
hot code: with the registry disabled every ``inc``/``observe`` is a single
attribute check, and spans only buffer tree nodes while a ``tracing()``
block is active.  This bench measures that contract on the real
workloads — all five paper algorithms plus the portfolio — and emits a
structured ``reports/BENCH_obs.json`` with the timings, the overhead
ratios, a captured span tree, and a metrics snapshot, so regressions in
the disabled-path cost show up as numbers rather than anecdotes.

Runs two ways:

- under pytest-benchmark with the other benches
  (``pytest benchmarks/bench_obs.py``);
- standalone for CI smoke runs: ``python benchmarks/bench_obs.py
  --quick``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.aggregate import aggregate
from repro.experiments import banner, render_table
from repro.obs import (
    disable_metrics,
    enable_metrics,
    get_registry,
    tracing,
)
from repro.parallel import portfolio

from conftest import REPORTS_DIR

_N = 1200
_QUICK_N = 400
_M = 8
_REPEATS = 3
_METHODS = ("balls", "agglomerative", "furthest", "local-search", "sampling")


def _label_matrix(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 12, size=(n, _M)).astype(np.int32)


def _workload(matrix: np.ndarray) -> None:
    for method in _METHODS:
        kwargs = {"rng": 0} if method == "sampling" else {}
        aggregate(matrix, method=method, compute_lower_bound=False, **kwargs)
    portfolio(matrix, rng=0, n_jobs=1)


def _time_workload(matrix: np.ndarray, repeats: int) -> float:
    """Best-of-``repeats`` wall time of the full workload (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _workload(matrix)
        best = min(best, time.perf_counter() - start)
    return best


def _run(n: int, repeats: int) -> tuple[str, dict]:
    matrix = _label_matrix(n, seed=n)
    _workload(matrix)  # warm-up: imports, allocator, caches

    disable_metrics()
    off_seconds = _time_workload(matrix, repeats)

    enable_metrics()
    get_registry().reset()
    metrics_seconds = _time_workload(matrix, repeats)
    snapshot = get_registry().snapshot()
    disable_metrics()

    with tracing() as trace:
        traced_seconds = _time_workload(matrix, 1)
    tree = trace.render(min_seconds=0.001)

    metrics_overhead = metrics_seconds / off_seconds - 1.0
    traced_overhead = traced_seconds / off_seconds - 1.0
    payload = {
        "n": n,
        "m": _M,
        "methods": list(_METHODS),
        "repeats": repeats,
        "off_seconds": off_seconds,
        "metrics_seconds": metrics_seconds,
        "traced_seconds": traced_seconds,
        "metrics_overhead": metrics_overhead,
        "traced_overhead": traced_overhead,
        "metrics_snapshot": snapshot,
        "trace": trace.to_dict(),
    }
    rows = [
        ("off (baseline)", f"{off_seconds:.3f}", "--"),
        ("metrics on", f"{metrics_seconds:.3f}", f"{100.0 * metrics_overhead:+.1f}%"),
        ("tracing on", f"{traced_seconds:.3f}", f"{100.0 * traced_overhead:+.1f}%"),
    ]
    text = render_table(
        ("configuration", "seconds", "overhead"),
        rows,
        title=banner(f"repro.obs — instrumentation overhead (n={n}, m={_M})"),
    )
    text += "\n\nspan tree of one traced run (>= 1 ms):\n" + tree
    return text, payload


def _write_json(payload: dict) -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / "BENCH_obs.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def bench_obs(benchmark, report):
    from conftest import once

    text, payload = once(benchmark, lambda: _run(_N, _REPEATS))
    _write_json(payload)
    report("obs_overhead", text)
    # The contract is "cheap when off", not a hard bound on noisy CI
    # hosts; a loose factor still catches accidental always-on work.
    assert payload["metrics_overhead"] < 0.25, "metrics-on overhead exploded"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small size for CI smoke runs")
    args = parser.parse_args(argv)
    n = _QUICK_N if args.quick else _N
    text, payload = _run(n, _REPEATS)
    path = _write_json(payload)
    print(text)
    print(f"\nstructured output: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
