"""E8 — Figure 5 (right): SAMPLING running time on large synthetic datasets.

The paper repeats the Figure 4 configuration at 50K-1M points (five
Gaussian clusters + 20% uniform noise, k-means for k = 2..10, SAMPLING
aggregation with sample size 1000) and shows the total running time grows
*linearly* — the post-processing assignment dominates and is linear.

We reproduce the series (sizes controlled by REPRO_SCALE) and check both
the linear shape and that the five planted clusters are recovered.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms import agglomerative, sampling
from repro.datasets import gaussian_with_noise
from repro.experiments import banner, current_scale, render_table
from repro.metrics import adjusted_rand_index

from conftest import once

_K_STAR = 5
_SAMPLE = 1000


def _build(total_points: int, seed: int):
    per_cluster = int(round(total_points / (_K_STAR * 1.2)))
    data = gaussian_with_noise(
        _K_STAR, points_per_cluster=per_cluster, noise_fraction=0.2, rng=seed
    )
    return data


def _kmeans_sweep_fast(points: np.ndarray, rng: int) -> np.ndarray:
    from repro.cluster import kmeans
    from repro.core.labels import as_label_matrix

    labels = [
        kmeans(points, k, n_init=2, max_iter=50, rng=rng + k).labels for k in range(2, 11)
    ]
    return as_label_matrix(labels)


def bench_fig5_scalability(benchmark, report):
    scale = current_scale()
    sizes = list(scale.scalability_sizes)
    rows = []
    aggregate_seconds = {}

    def run(total: int):
        data = _build(total, seed=11)
        sweep_start = time.perf_counter()
        matrix = _kmeans_sweep_fast(data.points, rng=3)
        sweep_seconds = time.perf_counter() - sweep_start
        start = time.perf_counter()
        clustering = sampling(matrix, agglomerative, sample_size=_SAMPLE, rng=0)
        seconds = time.perf_counter() - start
        return data, matrix, clustering, sweep_seconds, seconds

    outcomes = {}
    for total in sizes[:-1]:
        outcomes[total] = run(total)
    outcomes[sizes[-1]] = once(benchmark, lambda: run(sizes[-1]))

    for total in sizes:
        data, _, clustering, sweep_seconds, seconds = outcomes[total]
        signal = data.truth >= 0
        ari = adjusted_rand_index(clustering.labels[signal], data.truth[signal])
        big = int((clustering.sizes() >= data.n // 20).sum())
        aggregate_seconds[total] = seconds
        rows.append((data.n, big, f"{ari:.3f}", f"{sweep_seconds:.1f}", f"{seconds:.2f}"))

    text = render_table(
        ("points", "main clusters", "ARI on signal", "k-means sweep (s)", "SAMPLING aggregation (s)"),
        rows,
        title=banner(
            f"Figure 5 right — SAMPLING scalability, 5 Gaussian clusters + 20% noise "
            f"(sample={_SAMPLE}, {scale.describe()})"
        ),
    )
    text += "\n\npaper: total aggregation time grows linearly in the dataset size."
    report("fig5_scalability", text)

    for total in sizes:
        data, _, clustering, _, _ = outcomes[total]
        signal = data.truth >= 0
        ari = adjusted_rand_index(clustering.labels[signal], data.truth[signal])
        assert ari > 0.9, f"planted clusters lost at {total} points (ARI {ari:.2f})"
    # Linear shape: time per point roughly constant (loose factor for noise).
    smallest, largest = sizes[0], sizes[-1]
    per_point_small = aggregate_seconds[smallest] / smallest
    per_point_large = aggregate_seconds[largest] / largest
    assert per_point_large < per_point_small * 4, "aggregation time should grow ~linearly"
