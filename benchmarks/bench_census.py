"""E6 — the Census experiment of §5.2.

The paper: Census (32,561 people, 8 categorical attributes) is too large
for the quadratic algorithms; SAMPLING with FURTHEST on a 4,000-person
sample yields ~54 clusters at 24% classification error.  ROCK does not
scale; LIMBO (k=2, φ=1.0) reaches 27.6%.  Supervised classifiers get
14-21% — clustering is a different task, but the gap is small.

We reproduce the regime: SAMPLING+FURTHEST discovers tens of social
groups without being told k, at an error in the low/mid twenties, and
LIMBO needs k as input to compete.
"""

from __future__ import annotations

import numpy as np

from repro import aggregate
from repro.baselines import limbo
from repro.datasets import generate_census
from repro.experiments import banner, current_scale, render_table
from repro.metrics import classification_error, cluster_size_summary

from conftest import once


def bench_census_sampling(benchmark, report):
    scale = current_scale()
    dataset = generate_census(n=scale.census_rows, rng=0)

    result = once(
        benchmark,
        lambda: aggregate(
            dataset.label_matrix(),
            method="sampling",
            inner="furthest",
            sample_size=scale.census_sample,
            rng=0,
            compute_lower_bound=False,
        ),
    )
    error = classification_error(result.clustering, dataset.classes)
    sizes = cluster_size_summary(result.clustering)
    meaningful = int((result.clustering.sizes() >= max(5, dataset.n // 1000)).sum())

    # Duplicate collapsing (A7) composes with SAMPLING: identical regime,
    # smaller working set.
    collapsed = aggregate(
        dataset.label_matrix(),
        method="sampling",
        inner="furthest",
        sample_size=scale.census_sample,
        rng=0,
        collapse=True,
        compute_lower_bound=False,
    )
    collapsed_error = classification_error(collapsed.clustering, dataset.classes)
    collapsed_meaningful = int(
        (collapsed.clustering.sizes() >= max(5, dataset.n // 1000)).sum()
    )

    limbo_result = limbo(dataset.label_matrix(), k=2, phi=1.0, max_leaves=256)
    limbo_error = classification_error(limbo_result, dataset.classes)

    rows = [
        (
            f"SAMPLING+FURTHEST (s={scale.census_sample})",
            result.k,
            meaningful,
            f"{error * 100:.1f}",
            f"{result.elapsed_seconds:.1f}",
        ),
        (
            "SAMPLING+FURTHEST collapsed",
            collapsed.k,
            collapsed_meaningful,
            f"{collapsed_error * 100:.1f}",
            f"{collapsed.elapsed_seconds + collapsed.build_seconds:.1f}",
        ),
        ("LIMBO(k=2, phi=1.0)", limbo_result.k, limbo_result.k, f"{limbo_error * 100:.1f}", "-"),
    ]
    text = render_table(
        ("method", "k", "clusters >=0.1%", "E_C (%)", "seconds"),
        rows,
        title=banner(f"Census (§5.2) — {dataset.n} rows, 8 attributes ({scale.describe()})"),
    )
    text += (
        "\n\npaper: SAMPLING+FURTHEST on 4000-person sample -> 54 clusters,"
        "\nE_C = 24%; LIMBO(k=2, phi=1.0) -> 27.6%; ROCK does not scale."
        f"\nmeasured singletons: {sizes['singletons']}, largest cluster: {sizes['largest']}"
    )
    report("census", text)

    assert error < 0.30, f"classification error {error:.2%} out of the paper's regime"
    assert meaningful >= 25, "expected tens of meaningful social-group clusters"
    assert result.k >= 30
