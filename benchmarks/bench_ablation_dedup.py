"""A7 — ablation: duplicate collapsing on categorical data.

Categorical tables repeat rows (limited attribute combinations), and two
identical rows are never separated by any input clustering — so the
quadratic algorithms can run on the distinct rows with multiplicities
(:mod:`repro.core.atoms`).  This bench measures the collapse ratio and
the end-to-end speedup on the Census workload, and checks the quality is
preserved.
"""

from __future__ import annotations

import time

from repro import aggregate
from repro.core.atoms import collapse_duplicates
from repro.datasets import generate_census, generate_votes
from repro.experiments import banner, render_table
from repro.metrics import classification_error

from conftest import once

_CENSUS_ROWS = 6000


def bench_ablation_dedup(benchmark, report):
    census = generate_census(n=_CENSUS_ROWS, rng=0)
    votes = generate_votes(rng=0)

    rows = []
    outcomes = {}

    def run_pair(dataset):
        matrix = dataset.label_matrix()
        atoms = collapse_duplicates(matrix)
        start = time.perf_counter()
        direct = aggregate(matrix, method="agglomerative", compute_lower_bound=False)
        direct_seconds = time.perf_counter() - start
        start = time.perf_counter()
        collapsed = aggregate(
            matrix, method="agglomerative", collapse=True, compute_lower_bound=False
        )
        collapsed_seconds = time.perf_counter() - start
        return atoms, direct, direct_seconds, collapsed, collapsed_seconds

    outcomes["votes"] = run_pair(votes)
    outcomes["census"] = once(benchmark, lambda: run_pair(census))

    for name, dataset in (("votes", votes), ("census", census)):
        atoms, direct, direct_seconds, collapsed, collapsed_seconds = outcomes[name]
        direct_error = classification_error(direct.clustering, dataset.classes)
        collapsed_error = classification_error(collapsed.clustering, dataset.classes)
        rows.append(
            (
                name,
                dataset.n,
                atoms.n_atoms,
                f"{dataset.n / atoms.n_atoms:.2f}x",
                f"{direct_seconds:.2f}",
                f"{collapsed_seconds:.2f}",
                f"{direct_error * 100:.1f} / {collapsed_error * 100:.1f}",
            )
        )
    text = render_table(
        ("dataset", "rows", "atoms", "collapse", "direct (s)", "collapsed (s)", "E_C direct/collapsed (%)"),
        rows,
        title=banner(f"A7 — duplicate collapsing (AGGLOMERATIVE; census n={_CENSUS_ROWS})"),
    )
    text += (
        "\n\ncollapsing is exact for the objective (intra-atom pairs cost 0"
        "\nwhen kept together); the quadratic work shrinks with the square of"
        "\nthe collapse ratio."
    )
    report("ablation_dedup", text)

    atoms, direct, direct_seconds, collapsed, collapsed_seconds = outcomes["census"]
    assert atoms.n_atoms < census.n * 0.75, "census should collapse substantially"
    assert collapsed_seconds < direct_seconds, "collapsed run should be faster"
    direct_error = classification_error(direct.clustering, census.classes)
    collapsed_error = classification_error(collapsed.clustering, census.classes)
    assert abs(direct_error - collapsed_error) < 0.05
