"""Parallel backend: shared-memory build + portfolio speedup measurement.

Times the serial vs process-parallel paths of the two repro.parallel
entry points — the O(m n²) instance build and the algorithm portfolio —
and verifies bit-identity between them while at it.  Speedup is
*reported, not asserted*: the ratio is a property of the host (worker
count, cores, memory bandwidth), and CI containers are routinely
single-core, where the honest ratio is ≤ 1.

Runs two ways:

- under pytest-benchmark with the other benches
  (``pytest benchmarks/bench_parallel.py``);
- standalone for CI smoke runs: ``python benchmarks/bench_parallel.py
  --quick`` (small sizes, seconds not minutes).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.instance import disagreement_fractions
from repro.experiments import banner, render_table
from repro.parallel import parallel_disagreement_fractions, portfolio, resolve_jobs

from conftest import once

_BUILD_SIZES = (2000, 8000)
_PORTFOLIO_SIZE = 2000
_QUICK_BUILD_SIZES = (600, 1200)
_QUICK_PORTFOLIO_SIZE = 400
_M = 8
_BLOCK_ROWS = 256  # fan-out granularity: enough blocks to feed every worker


def _label_matrix(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 12, size=(n, _M)).astype(np.int32)


def _time_build(n: int, jobs: int) -> tuple[float, float, bool]:
    """(serial seconds, parallel seconds, bit-identical?) for one size."""
    matrix = _label_matrix(n, seed=n)
    start = time.perf_counter()
    serial = disagreement_fractions(matrix, n_jobs=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    fanned = parallel_disagreement_fractions(
        matrix, n_jobs=jobs, block_rows=_BLOCK_ROWS
    )
    parallel_seconds = time.perf_counter() - start
    return serial_seconds, parallel_seconds, bool(np.array_equal(serial, fanned))


def _time_portfolio(n: int, jobs: int) -> tuple[float, float, bool]:
    matrix = _label_matrix(n, seed=n + 1)
    start = time.perf_counter()
    serial = portfolio(matrix, rng=0, n_jobs=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    fanned = portfolio(matrix, rng=0, n_jobs=jobs)
    parallel_seconds = time.perf_counter() - start
    identical = bool(
        np.array_equal(serial.best.labels, fanned.best.labels)
        and serial.best_method == fanned.best_method
    )
    return serial_seconds, parallel_seconds, identical


def _run(build_sizes: tuple[int, ...], portfolio_size: int, jobs: int) -> tuple[str, bool]:
    """Run the sweep; returns (report text, all outputs bit-identical?)."""
    rows = []
    all_identical = True
    for n in build_sizes:
        serial_s, parallel_s, identical = _time_build(n, jobs)
        all_identical &= identical
        rows.append(
            (
                f"build n={n}",
                f"{serial_s:.2f}",
                f"{parallel_s:.2f}",
                f"{serial_s / parallel_s:.2f}x",
                "yes" if identical else "NO",
            )
        )
    serial_s, parallel_s, identical = _time_portfolio(portfolio_size, jobs)
    all_identical &= identical
    rows.append(
        (
            f"portfolio n={portfolio_size}",
            f"{serial_s:.2f}",
            f"{parallel_s:.2f}",
            f"{serial_s / parallel_s:.2f}x",
            "yes" if identical else "NO",
        )
    )
    text = render_table(
        ("workload", "serial (s)", f"{jobs} workers (s)", "speedup", "bit-identical"),
        rows,
        title=banner(f"repro.parallel — shared-memory build + portfolio ({jobs} workers)"),
    )
    text += "\n\nspeedup is informational (host-dependent); bit-identity is the invariant."
    return text, all_identical


def bench_parallel(benchmark, report):
    jobs = min(4, max(2, resolve_jobs(0)))
    text, all_identical = once(
        benchmark, lambda: _run(_BUILD_SIZES, _PORTFOLIO_SIZE, jobs)
    )
    report("parallel_backend", text)
    assert all_identical, "parallel outputs diverged from the serial path"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker count (default: all cores, max 4)"
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else min(4, max(2, resolve_jobs(0)))
    sizes = _QUICK_BUILD_SIZES if args.quick else _BUILD_SIZES
    portfolio_size = _QUICK_PORTFOLIO_SIZE if args.quick else _PORTFOLIO_SIZE
    text, all_identical = _run(sizes, portfolio_size, jobs)
    print(text)
    return 0 if all_identical else 1


if __name__ == "__main__":
    sys.exit(main())
