"""A4 — ablation: the missing-value coin-flip probability p (§2).

The paper handles a missing attribute value by reporting a pair
co-clustered with probability p and optimizing the *expected*
disagreements.  We inflate the missingness of Votes to 25% of all cells
and sweep p: the consensus should be robust for moderate p (a missing
vote carries no information either way), while extreme p biases the
instance toward one big cluster (p -> 1 pushes X down) or all singletons
(p -> 0 pushes X up).
"""

from __future__ import annotations

from repro import aggregate
from repro.algorithms import agglomerative
from repro.core.instance import CorrelationInstance
from repro.datasets import generate_votes
from repro.experiments import banner, render_table
from repro.metrics import classification_error

from conftest import once

_PS = (0.0, 0.25, 0.5, 0.75, 1.0)
_MISSING_FRACTION = 0.25


def bench_ablation_missing_p(benchmark, report):
    dataset = generate_votes(missing=int(435 * 16 * _MISSING_FRACTION), rng=0)

    def run():
        outcomes = []
        for p in _PS:
            result = aggregate(
                dataset.label_matrix(), method="agglomerative", p=p, compute_lower_bound=False
            )
            outcomes.append((p, result))
        return outcomes

    outcomes = once(benchmark, run)

    rows = []
    for p, result in outcomes:
        error = classification_error(result.clustering, dataset.classes)
        largest = int(result.clustering.sizes().max())
        rows.append((f"coin-flip p={p}", result.k, largest, f"{error * 100:.1f}"))

    # The paper's *other* strategy: average the missing attributes out and
    # let the remaining ones decide (§2).
    averaged_instance = CorrelationInstance.from_label_matrix(
        dataset.label_matrix(), missing="average"
    )
    averaged = agglomerative(averaged_instance)
    rows.append(
        (
            "averaging-out",
            averaged.k,
            int(averaged.sizes().max()),
            f"{classification_error(averaged, dataset.classes) * 100:.1f}",
        )
    )
    text = render_table(
        ("strategy", "k", "largest cluster", "E_C (%)"),
        rows,
        title=banner(
            f"A4 — missing-value strategies, Votes with {int(_MISSING_FRACTION * 100)}% missing"
        ),
    )
    text += (
        "\n\nexpected: moderate p keeps the two-party consensus; p -> 1 biases"
        "\ntoward merging, p -> 0 toward fragmentation; the averaging-out"
        "\nstrategy behaves like a neutral p."
    )
    report("ablation_missing", text)

    assert averaged.k <= 5  # averaging-out must also find the party structure

    by_p = {p: result for p, result in outcomes}
    # Neutral p recovers the two parties even with 25% of cells missing.
    assert by_p[0.5].k == 2
    error = classification_error(by_p[0.5].clustering, dataset.classes)
    assert error < 0.25
    # Monotone bias in cluster counts: merging pressure grows with p.
    assert by_p[1.0].k <= by_p[0.5].k <= by_p[0.0].k
