"""A6 — discovering k: aggregation vs classical model selection (§2).

The paper's §2 contrasts its parameter-free behaviour with the classical
remedies for choosing the number of clusters: BIC and cross-validated
likelihood [16, 18].  This bench makes the comparison concrete on the
Figure-4 workload: for each planted k*, how do (a) k-means + BIC,
(b) k-means + cross-validated likelihood, and (c) aggregation of the
k-means sweep — which never sees k — estimate the number of clusters?

Aggregation counts only its *main* clusters (the noise points form small
outlier clusters by design — that is the §2 outlier feature, not a
failure to find k).
"""

from __future__ import annotations

import numpy as np

from repro import aggregate
from repro.cluster import select_k_bic, select_k_cross_validation
from repro.datasets import gaussian_with_noise
from repro.experiments import banner, kmeans_sweep, render_table

from conftest import once

_MAIN_THRESHOLD = 50


def _estimates(k_star: int, seed: int):
    data = gaussian_with_noise(k_star, points_per_cluster=100, noise_fraction=0.2, rng=seed)
    bic_k, _ = select_k_bic(data.points, range(2, 11), rng=0, n_init=4)
    cv_k, _ = select_k_cross_validation(data.points, range(2, 11), folds=3, rng=0, n_init=2)
    matrix = kmeans_sweep(data.points, rng=31 * seed + 1)
    result = aggregate(matrix, method="agglomerative", compute_lower_bound=False)
    main = int((result.clustering.sizes() >= _MAIN_THRESHOLD).sum())
    return bic_k, cv_k, main, result.k


def bench_ablation_k_selection(benchmark, report):
    cases = [(3, 3), (5, 5), (7, 11)]
    rows = []
    outcomes = {}
    for k_star, seed in cases[:-1]:
        outcomes[k_star] = _estimates(k_star, seed)
    outcomes[cases[-1][0]] = once(benchmark, lambda: _estimates(*cases[-1]))

    for k_star, _ in cases:
        bic_k, cv_k, main, total = outcomes[k_star]
        rows.append((f"k*={k_star}", bic_k, cv_k, f"{main} (+{total - main} outlier)"))
    text = render_table(
        ("dataset", "k-means + BIC", "k-means + CV likelihood", "aggregation main clusters"),
        rows,
        title=banner("A6 — estimating the number of clusters (20% background noise)"),
    )
    text += (
        "\n\npaper §2: aggregation 'takes automatically care of the selection"
        "\nof the number of clusters' — no sweep, no criterion, and the noise"
        "\nlands in separate outlier clusters instead of distorting k."
    )
    report("ablation_kselect", text)

    for k_star, _ in cases:
        _, _, main, _ = outcomes[k_star]
        assert main == k_star, f"aggregation missed k*={k_star} (found {main})"
