"""E3 — Table 1: AGGLOMERATIVE's confusion matrix on Mushrooms.

The paper presents the class-vs-cluster confusion matrix of the clusters
AGGLOMERATIVE finds on Mushrooms: seven natural clusters, mostly but not
perfectly class-pure (e.g. the largest holds 808 poisonous and 2864
edible mushrooms), giving the 11.1% classification error of Table 3.
"""

from __future__ import annotations

import numpy as np

from repro import aggregate
from repro.datasets import generate_mushrooms
from repro.experiments import banner, current_scale, render_table
from repro.metrics import classification_error, confusion_matrix

from conftest import once

#: Table 1 of the paper (columns c1..c7), for the report.
_PAPER = (
    ("Poisonous", (808, 0, 1296, 1768, 0, 36, 8)),
    ("Edible", (2864, 1056, 0, 96, 192, 0, 0)),
)


def bench_table1_confusion(benchmark, report):
    scale = current_scale()
    dataset = generate_mushrooms(n=scale.mushrooms_rows, rng=0)
    result = once(
        benchmark,
        lambda: aggregate(dataset.label_matrix(), method="agglomerative", compute_lower_bound=False),
    )

    table_matrix = confusion_matrix(result.clustering, dataset.classes)
    order = np.argsort(-table_matrix.sum(axis=0))
    shown = order[: min(10, len(order))]
    headers = ("class",) + tuple(f"c{i + 1}" for i in range(len(shown)))
    rows = [
        (dataset.class_names[class_index],) + tuple(int(table_matrix[class_index, c]) for c in shown)
        for class_index in range(table_matrix.shape[0])
    ]
    error = classification_error(result.clustering, dataset.classes)
    text = render_table(
        headers,
        rows,
        title=banner(
            f"Table 1 — AGGLOMERATIVE confusion matrix on Mushrooms ({scale.describe()})"
        ),
    )
    text += f"\n\nmeasured: k={result.k}, E_C={error * 100:.1f}%"
    text += "\npaper (full 8124 rows):"
    for name, counts in _PAPER:
        text += f"\n  {name:>9s} " + " ".join(f"{value:5d}" for value in counts)
    text += "\n  (paper E_C = 11.1%, k = 7)"
    report("table1_confusion", text)

    sizes = np.sort(result.clustering.sizes())[::-1]
    main_clusters = int((sizes >= max(5, dataset.n // 100)).sum())
    assert 5 <= main_clusters <= 10, f"expected ~7 main clusters, got {main_clusters}"
    assert error < 0.2, f"classification error too high: {error:.2%}"
