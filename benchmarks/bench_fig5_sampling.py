"""E7 — Figure 5 (left, middle): sampling on Mushrooms.

The paper sweeps the SAMPLING sample size on Mushrooms and plots (left)
the running time as a fraction of the non-sampling algorithm and (middle)
the classification error converging to the non-sampling error.  At sample
size 1600 they report >50% time reduction at essentially the same error.

We reproduce both series with AGGLOMERATIVE as the inner algorithm.
"""

from __future__ import annotations

import time

from repro import aggregate
from repro.algorithms import agglomerative, sampling
from repro.datasets import generate_mushrooms
from repro.experiments import banner, current_scale, render_table
from repro.metrics import classification_error

from conftest import once


def bench_fig5_sampling_sweep(benchmark, report):
    scale = current_scale()
    dataset = generate_mushrooms(n=scale.mushrooms_rows, rng=0)
    matrix = dataset.label_matrix()

    # Non-sampling reference (time includes building the instance — that is
    # exactly the quadratic cost SAMPLING avoids).
    start = time.perf_counter()
    reference = aggregate(matrix, method="agglomerative", compute_lower_bound=False)
    reference_seconds = time.perf_counter() - start
    reference_error = classification_error(reference.clustering, dataset.classes)

    sweep = list(scale.sampling_sweep)
    rows = []
    results = {}

    def run(size: int):
        start = time.perf_counter()
        clustering = sampling(matrix, agglomerative, sample_size=size, rng=1)
        return clustering, time.perf_counter() - start

    for size in sweep[:-1]:
        results[size] = run(size)
    results[sweep[-1]] = once(benchmark, lambda: run(sweep[-1]))

    for size in sweep:
        clustering, seconds = results[size]
        error = classification_error(clustering, dataset.classes)
        rows.append(
            (
                size,
                clustering.k,
                f"{error * 100:.1f}",
                f"{seconds:.2f}",
                f"{seconds / reference_seconds:.2f}",
            )
        )
    rows.append(
        (
            "full (no sampling)",
            reference.k,
            f"{reference_error * 100:.1f}",
            f"{reference_seconds:.2f}",
            "1.00",
        )
    )
    text = render_table(
        ("sample size", "k", "E_C (%)", "seconds", "time / non-sampling"),
        rows,
        title=banner(f"Figure 5 left+middle — SAMPLING sweep on Mushrooms ({scale.describe()})"),
    )
    text += (
        "\n\npaper: time ratio < 0.5 at sample 1600 on 8124 rows; E_C converges"
        "\nto the non-sampling error as the sample grows."
    )
    report("fig5_sampling", text)

    largest = sweep[-1]
    final_error = classification_error(results[largest][0], dataset.classes)
    assert final_error <= reference_error + 0.05, "largest sample should match full error"
    smallest_seconds = results[sweep[0]][1]
    assert smallest_seconds < reference_seconds, "small samples must be faster than full"
