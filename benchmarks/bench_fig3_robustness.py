"""E1 — Figure 3: clustering aggregation improves clustering robustness.

The paper's first experiment: five vanilla clusterings (single, complete,
average linkage, Ward, k-means, all with k = 7) of a 7-group 2-D dataset
with narrow bridges, an elongated cluster and uneven sizes.  Each input is
imperfect in its own way; aggregating them with AGGLOMERATIVE "cancels
out" the mistakes.  We report the agreement of every input and of the
aggregate with the perceptual ground truth (adjusted Rand index — the
paper argues visually; we need a number), expecting the aggregate to be at
least as good as every input.
"""

from __future__ import annotations

import numpy as np

from repro import aggregate
from repro.cluster import hierarchical, kmeans
from repro.core.labels import as_label_matrix
from repro.datasets import seven_groups
from repro.experiments import banner, render_table
from repro.metrics import adjusted_rand_index

from conftest import once


def bench_fig3_robustness(benchmark, report):
    data = seven_groups(rng=0)
    inputs: dict[str, np.ndarray] = {
        method: hierarchical(data.points, 7, method)
        for method in ("single", "complete", "average", "ward")
    }
    inputs["k-means"] = kmeans(data.points, 7, rng=0).labels
    matrix = as_label_matrix(list(inputs.values()))

    result = once(benchmark, lambda: aggregate(matrix, method="agglomerative"))

    rows = [
        (name, len(np.unique(labels)), adjusted_rand_index(labels, data.truth))
        for name, labels in inputs.items()
    ]
    aggregate_ari = adjusted_rand_index(result.clustering, data.truth)
    rows.append(("AGGREGATION", result.k, aggregate_ari))
    table = render_table(
        ("clustering", "k", "ARI vs truth"),
        rows,
        title=banner(f"Figure 3 — robustness on the 7-group dataset (n={data.n})"),
    )
    table += "\n\npaper: every input imperfect; aggregation better than any input."
    table += "\n\naggregated clustering (ASCII rendering):\n"
    table += data.ascii_plot(result.clustering.labels, width=72, height=20)
    report("fig3_robustness", table)

    best_input = max(ari for _, _, ari in rows[:-1])
    assert aggregate_ari >= best_input - 0.02, "aggregate should match or beat every input"
    assert 6 <= result.k <= 9
