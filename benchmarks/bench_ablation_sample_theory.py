"""A8 — ablation: the sampling-size theory of §4.1.

"Using the Chernoff bounds we can prove that sampling O(log n) nodes is
sufficient to ensure that we will select at least one of the nodes in a
large cluster with high probability."  We verify the claim empirically:
for clusters holding a constant fraction of the data, the probability
that a uniform sample misses some large cluster decays exponentially in
the sample size and is insensitive to n — so a logarithmic sample
suffices at any scale.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import default_sample_size
from repro.experiments import banner, render_table

from conftest import once

_TRIALS = 400
_CLUSTER_FRACTIONS = (0.30, 0.15, 0.15, 0.10, 0.10)  # five "large" clusters
_SIZES = (10_000, 100_000, 1_000_000)
_SAMPLES = (25, 50, 100, 200, 400)


def _miss_probability(n: int, sample: int, rng: np.random.Generator) -> float:
    """P(some large cluster unsampled), estimated over _TRIALS draws.

    Sampling without replacement is dominated by the with-replacement
    bound; we simulate without replacement exactly via counts.
    """
    boundaries = np.cumsum([int(fraction * n) for fraction in _CLUSTER_FRACTIONS])
    misses = 0
    for _ in range(_TRIALS):
        draws = rng.choice(n, size=sample, replace=False)
        previous = 0
        for boundary in boundaries:
            if not np.any((draws >= previous) & (draws < boundary)):
                misses += 1
                break
            previous = boundary
    return misses / _TRIALS


def bench_ablation_sample_theory(benchmark, report):
    rng = np.random.default_rng(0)

    def run():
        table = {}
        for n in _SIZES:
            table[n] = [
                _miss_probability(n, sample, rng) for sample in _SAMPLES
            ]
        return table

    table = once(benchmark, run)

    rows = []
    for n in _SIZES:
        rows.append(
            (f"n={n:,}", default_sample_size(n))
            + tuple(f"{value:.3f}" for value in table[n])
        )
    text = render_table(
        ("dataset", "default sample") + tuple(f"miss@s={s}" for s in _SAMPLES),
        rows,
        title=banner(
            "A8 — P(a uniform sample misses some large cluster); "
            f"clusters of {', '.join(f'{int(f * 100)}%' for f in _CLUSTER_FRACTIONS)} of the data"
        ),
    )
    text += (
        "\n\nexponential decay in the sample size, independent of n — the"
        "\nChernoff argument behind SAMPLING's O(log n) sample (§4.1); the"
        "\ndefault sample sizes sit far into the safe regime."
    )
    report("ablation_sample_theory", text)

    for n in _SIZES:
        values = table[n]
        # Monotone decay and a safe default: miss probability at the
        # smallest default sample is essentially zero.
        assert values[0] >= values[-1]
        assert values[-1] <= 0.01
    # Scale-independence: the curves for different n essentially coincide.
    spread = max(abs(table[_SIZES[0]][2] - table[_SIZES[-1]][2]), 0.0)
    assert spread <= 0.05
