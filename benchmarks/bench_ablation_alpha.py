"""A1 — ablation: the BALLS α parameter.

The paper proves the 3-approximation at α = 1/4 but observes that value
"tends to be small as it creates many singleton clusters", recommending
α = 2/5 on real data.  We sweep α on Votes and (reduced) Mushrooms and
report k, the singleton count, E_C and E_D — expecting the singleton
blow-up at small α and the best quality near 0.4.
"""

from __future__ import annotations

from repro import aggregate
from repro.core.instance import CorrelationInstance
from repro.datasets import generate_mushrooms, generate_votes
from repro.experiments import banner, disagreement_cost, render_table
from repro.metrics import classification_error, cluster_size_summary

from conftest import once

_ALPHAS = (0.1, 0.2, 0.25, 0.3, 0.4, 0.45)


def _sweep(dataset, instance):
    rows = []
    for alpha in _ALPHAS:
        result = aggregate(instance, method="balls", alpha=alpha, compute_lower_bound=False)
        error = classification_error(result.clustering, dataset.classes)
        sizes = cluster_size_summary(result.clustering)
        rows.append(
            (
                alpha,
                result.k,
                sizes["singletons"],
                f"{error * 100:.1f}",
                f"{disagreement_cost(dataset, result.clustering):,.0f}",
            )
        )
    return rows


def bench_ablation_balls_alpha(benchmark, report):
    votes = generate_votes(rng=0)
    votes_instance = CorrelationInstance.from_label_matrix(votes.label_matrix())
    mushrooms = generate_mushrooms(n=1200, rng=0)
    mushrooms_instance = CorrelationInstance.from_label_matrix(mushrooms.label_matrix())

    votes_rows = once(benchmark, lambda: _sweep(votes, votes_instance))
    mushroom_rows = _sweep(mushrooms, mushrooms_instance)

    header = ("alpha", "k", "singletons", "E_C (%)", "E_D")
    text = render_table(header, votes_rows, title=banner("A1 — BALLS alpha sweep, Votes"))
    text += "\n" + render_table(
        header, mushroom_rows, title=banner("A1 — BALLS alpha sweep, Mushrooms (1200 rows)")
    )
    text += (
        "\n\npaper: alpha = 1/4 over-fragments (many singletons);"
        "\nalpha = 2/5 gives better solutions on the real datasets."
    )
    report("ablation_alpha", text)

    # The fragmentation effect: strictly fewer clusters at 0.4 than at 0.25.
    k_small = next(row[1] for row in votes_rows if row[0] == 0.25)
    k_practical = next(row[1] for row in votes_rows if row[0] == 0.4)
    assert k_practical < k_small, "alpha=0.4 should fragment less than alpha=0.25"
