"""E2 — Figure 4: finding the correct clusters and outliers.

For k* in {3, 5, 7}: k* Gaussian clusters (100 points each) plus 20%
uniform background noise; k-means is run for k = 2..10 and the nine
clusterings are aggregated.  The paper's finding: the main aggregate
clusters are exactly the k* planted ones, and the extra small clusters
contain only background noise (outlier detection for free, no k given).
"""

from __future__ import annotations

import numpy as np

from repro import aggregate
from repro.datasets import gaussian_with_noise
from repro.experiments import banner, kmeans_sweep, render_table
from repro.metrics import adjusted_rand_index

from conftest import once

#: A cluster counts as "main" when it holds at least half a planted
#: cluster's worth of points.
_MAIN_THRESHOLD = 50


def _run(k_star: int):
    data = gaussian_with_noise(k_star, points_per_cluster=100, noise_fraction=0.2, rng=k_star)
    matrix = kmeans_sweep(data.points, rng=17 * k_star)
    result = aggregate(matrix, method="agglomerative", compute_lower_bound=False)
    return data, result


def _analyze(data, result):
    sizes = result.clustering.sizes()
    main_clusters = np.flatnonzero(sizes >= _MAIN_THRESHOLD)
    noise = data.truth == -1
    # Fraction of each small cluster that is background noise.
    small_members = np.isin(result.clustering.labels, np.flatnonzero(sizes < _MAIN_THRESHOLD))
    small_noise_fraction = (
        float(noise[small_members].mean()) if small_members.any() else float("nan")
    )
    clustered = ~noise
    ari_on_signal = adjusted_rand_index(
        result.clustering.labels[clustered], data.truth[clustered]
    )
    return main_clusters.size, small_noise_fraction, ari_on_signal


def bench_fig4_structure(benchmark, report):
    results = {}
    for k_star in (3, 7):
        results[k_star] = _run(k_star)
    # Benchmark the middle configuration.
    data5, result5 = once(benchmark, lambda: _run(5))
    results[5] = (data5, result5)

    rows = []
    for k_star in (3, 5, 7):
        data, result = results[k_star]
        main, small_noise, ari = _analyze(data, result)
        rows.append((f"k*={k_star}", data.n, result.k, main, small_noise, ari))
    table = render_table(
        ("dataset", "points", "consensus k", "main clusters", "noise frac of small", "ARI on signal"),
        rows,
        title=banner("Figure 4 — correct clusters and outliers (k-means k=2..10 aggregated)"),
    )
    table += (
        "\n\npaper: main clusters = the planted ones; small extra clusters"
        "\ncontain only background noise."
    )
    report("fig4_structure", table)

    for k_star in (3, 5, 7):
        data, result = results[k_star]
        main, small_noise, ari = _analyze(data, result)
        assert main == k_star, f"expected {k_star} main clusters, found {main}"
        assert ari > 0.9, f"planted clusters poorly recovered (ARI {ari:.2f})"
        if not np.isnan(small_noise):
            assert small_noise > 0.65, "small clusters should be mostly background noise"
