"""A8 — streaming aggregation: incremental update vs rebuild-from-scratch.

The streaming engine folds each arriving clustering into the running
separation counts (O(n²) vectorized), follows the affine X change on a
persistent move evaluator in O(n·k), and warm-starts LOCALSEARCH from the
previous consensus.  The baseline recomputes everything per arriving
column: rebuild X from all columns seen so far, then cold-start
LOCALSEARCH from singletons.  This bench replays the Votes generator's 16
attribute columns at n >= 2000 and reports per-update wall-time for both,
checking the incremental path is >= 5x faster once the stream is warm
(after the third update) and that the final consensus quality matches.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.local_search import local_search
from repro.core.instance import CorrelationInstance
from repro.datasets import generate_votes
from repro.experiments import banner, current_scale, render_table
from repro.stream import StreamingAggregator

from conftest import once

_ROWS = {"ci": 2000, "paper": 4000}


def bench_stream_updates(benchmark, report):
    scale = current_scale()
    n = _ROWS[scale.name]
    matrix = generate_votes(n=n, rng=0).label_matrix()
    m = matrix.shape[1]

    def run():
        engine = StreamingAggregator(n)
        incremental_seconds = []
        for j in range(m):
            start = time.perf_counter()
            engine.observe(matrix[:, j])
            incremental_seconds.append(time.perf_counter() - start)

        rebuild_seconds = []
        for j in range(m):
            start = time.perf_counter()
            instance = CorrelationInstance.from_label_matrix(matrix[:, : j + 1])
            local_search(instance)
            rebuild_seconds.append(time.perf_counter() - start)
        return engine, incremental_seconds, rebuild_seconds

    engine, incremental_seconds, rebuild_seconds = once(benchmark, run)

    rows = []
    speedups = []
    for j, update in enumerate(engine.history):
        speedup = rebuild_seconds[j] / incremental_seconds[j]
        speedups.append(speedup)
        rows.append(
            (
                update.index,
                f"{1000 * incremental_seconds[j]:.1f}",
                f"{1000 * rebuild_seconds[j]:.1f}",
                f"{speedup:.1f}x",
                update.moves,
                update.k,
            )
        )

    batch_instance = CorrelationInstance.from_label_matrix(matrix)
    batch_cost = batch_instance.cost(local_search(batch_instance))
    warm = speedups[3:]

    text = render_table(
        ("update", "incremental (ms)", "rebuild (ms)", "speedup", "moves", "k"),
        rows,
        title=banner(f"A8 — streaming updates vs rebuild (votes n={n}, {scale.describe()})"),
    )
    text += (
        f"\n\nwarm speedup (updates 4..{m}): mean {np.mean(warm):.1f}x, min {min(warm):.1f}x"
        f"\nfinal consensus cost: streaming {engine.cost():,.1f} vs batch {batch_cost:,.1f}"
        f" (ratio {engine.cost() / batch_cost:.4f})"
        "\n\nthe rebuild baseline pays O(j·n²) to rebuild X from the j columns"
        "\nseen so far plus a cold LOCALSEARCH descent; the engine pays one"
        "\nO(n²) count fold and a warm sweep, so the gap widens as the"
        "\nstream grows."
    )
    report("stream_updates", text)

    assert float(np.mean(warm)) >= 5.0, f"warm updates should be >= 5x faster, got {warm}"
    assert engine.cost() <= batch_cost * 1.01, "streaming consensus must match batch quality"
